#include "core/resilient_pcg.hpp"

#include <cmath>
#include <cstdint>
#include <cstring>

#include "common/error.hpp"
#include "common/fused.hpp"
#include "common/timer.hpp"
#include "core/reconstruction.hpp"
#include "parallel/parallel.hpp"

namespace esrp {

namespace {

/// Chunk size for elementwise loops over simulated nodes (axpy, xpby,
/// preconditioner application). Each node's slice is a full BLAS-1/SpMV
/// work item, so even a single node per task amortizes the dispatch cost
/// on realistic (>= 1k rows/node) problems.
index_t node_grain(rank_t num_nodes) {
  return adaptive_grain(static_cast<index_t>(num_nodes));
}

/// Reductions over nodes use a FIXED grain of one rank per chunk: chunk
/// boundaries never move with the thread count, so the distributed dots —
/// and with them whole solver trajectories — are bitwise identical across
/// all thread counts >= 2 (docs/parallelism.md). One task per rank is fine:
/// a rank's slice dot dwarfs a task dispatch.
constexpr index_t kNodeReduceGrain = 1;

/// The preconditioner action must be block diagonal with respect to the node
/// partition: every row's entries stay within the owner's index range. This
/// is what makes its application communication-free and P_{I_f, I\I_f} = 0.
void check_node_local(const CsrMatrix& p, const BlockRowPartition& part) {
  for (rank_t s = 0; s < part.num_nodes(); ++s) {
    const index_t lo = part.begin(s), hi = part.end(s);
    for (index_t i = lo; i < hi; ++i) {
      const auto cols = p.row_cols(i);
      ESRP_CHECK_MSG(cols.empty() || (cols.front() >= lo && cols.back() < hi),
                     "preconditioner action row "
                         << i << " crosses the boundary of node " << s
                         << " — use node-aligned block Jacobi");
    }
  }
}

/// Engine configuration of the classic solver: one star snapshot of
/// {x, r, z, p} + beta, with the trailing copy pairing of Alg. 2 (z^(t)
/// derives from copies p'^(t-1), p'^(t)).
ResilienceEngine::Config classic_engine_config() {
  ResilienceEngine::Config cfg;
  cfg.snapshot_slots = 1;
  cfg.pairing = ResilienceEngine::CopyPairing::trailing;
  cfg.checkpoint_vectors = 4;
  cfg.checkpoint_scalars = 1;
  return cfg;
}

} // namespace

ResilientPcg::ResilientPcg(const CsrMatrix& a, const Preconditioner& precond,
                           SimCluster& cluster, ResilienceOptions opts,
                           const SpmvPlan* shared_plan,
                           const AspmvPlan* shared_aug)
    : a_(&a),
      precond_(&precond),
      cluster_(&cluster),
      opts_(opts),
      orig_part_(&cluster.partition()),
      resilience_(opts, cluster.partition(), classic_engine_config()) {
  ESRP_CHECK(a.rows() == a.cols());
  ESRP_CHECK(a.rows() == cluster.partition().global_size());
  if (shared_plan != nullptr) {
    ESRP_CHECK_MSG(&shared_plan->partition() == &cluster.partition(),
                   "shared SpmvPlan was built on a different partition than "
                   "the cluster's");
    plan_ = shared_plan;
  } else {
    owned_plan_ = std::make_unique<SpmvPlan>(a, cluster.partition());
    plan_ = owned_plan_.get();
  }
  if (shared_aug != nullptr) {
    ESRP_CHECK_MSG(&shared_aug->base() == plan_ && shared_aug->phi() == opts.phi,
                   "shared AspmvPlan does not match the SpMV plan / phi of "
                   "this solve");
    aug_ = shared_aug;
  } else {
    owned_aug_ = std::make_unique<AspmvPlan>(*plan_, opts.phi);
    aug_ = owned_aug_.get();
  }
  engine_ = std::make_unique<ExchangeEngine>(a, *plan_, cluster);
  ESRP_CHECK_MSG(precond.action_matrix() != nullptr,
                 "the distributed solver requires a preconditioner with an "
                 "explicit action matrix (e.g. block Jacobi)");
  if (opts.strategy == Strategy::esrp &&
      opts.precond_formulation == PrecondFormulation::matrix) {
    ESRP_CHECK_MSG(precond.matrix_form() != nullptr,
                   "the matrix formulation requires "
                   "Preconditioner::matrix_form()");
  }
  ESRP_CHECK(precond.dim() == a.rows());
  ESRP_CHECK(opts.rtol > 0 && opts.inner_rtol > 0);
  ESRP_CHECK(opts_.residual_replacement >= 0);
  ESRP_CHECK(opts_.sdc_threshold > 0);
  for (const SdcEvent& e : opts_.sdc_events) {
    if (!e.enabled()) continue;
    ESRP_CHECK_MSG(e.target == "p" || e.target == "x" || e.target == "r" ||
                       e.target == "checkpoint" || e.target == "pcopy",
                   "SDC target must be p, x, r, checkpoint, or pcopy, got '"
                       << e.target << "'");
    ESRP_CHECK_MSG(e.index >= 0 && e.index < a.rows(),
                   "SDC entry " << e.index << " outside [0, " << a.rows()
                                << ")");
    ESRP_CHECK_MSG(e.bit >= 0 && e.bit < 64,
                   "SDC bit " << e.bit << " outside [0, 64)");
  }
  build_precond_blocks();
}

void ResilientPcg::build_precond_blocks() {
  const BlockRowPartition& part = cluster_->partition();
  const CsrMatrix& p_act = *precond_->action_matrix();
  check_node_local(p_act, part);
  // Pre-extract each node's diagonal block of P for local application.
  precond_local_.clear();
  precond_local_.reserve(static_cast<std::size_t>(part.num_nodes()));
  for (rank_t s = 0; s < part.num_nodes(); ++s) {
    const IndexSet range = index_range(part.begin(s), part.end(s));
    precond_local_.push_back(p_act.extract(range, range));
  }
}

SolverState ResilientPcg::solver_state() {
  return SolverState{{x_.get(), r_.get(), z_.get(), p_.get()},
                     {ap_.get()},
                     {&beta_}};
}

void ResilientPcg::rebuild_on_partition(const BlockRowPartition& np,
                                        const Vector& xg, const Vector& rg,
                                        const Vector& zg, const Vector& pg) {
  cluster_->set_partition(np);

  // Any borrowed (shared) plans refer to the old partition; from here on
  // the solver owns its plans.
  owned_plan_ = std::make_unique<SpmvPlan>(*a_, np);
  plan_ = owned_plan_.get();
  owned_aug_ = std::make_unique<AspmvPlan>(*plan_, opts_.phi);
  aug_ = owned_aug_.get();
  engine_ = std::make_unique<ExchangeEngine>(*a_, *plan_, *cluster_);
  build_precond_blocks();

  x_ = std::make_unique<DistVector>(np, xg);
  r_ = std::make_unique<DistVector>(np, rg);
  z_ = std::make_unique<DistVector>(np, zg);
  p_ = std::make_unique<DistVector>(np, pg);
  ap_ = std::make_unique<DistVector>(np);
}

void ResilientPcg::repartition(std::span<const rank_t> failed) {
  // Gather the current state, absorb the failed ranks' ranges into their
  // surviving neighbors, and rebuild everything partition-dependent. The
  // accounting approximation: adopters already received the reconstructed
  // entries during the recovery gather, so no extra migration messages are
  // charged (DESIGN.md). The engine's star snapshots migrate around this
  // hook (ResilienceEngine::recover).
  const Vector xg = x_->gather_global();
  const Vector rg = r_->gather_global();
  const Vector zg = z_->gather_global();
  const Vector pg = p_->gather_global();

  auto shrunk = std::make_unique<BlockRowPartition>(
      absorb_ranks(cluster_->partition(), failed));
  rebuild_on_partition(*shrunk, xg, rg, zg, pg);
  // The previous owned partition (if any) stays referenced until the
  // rebuild above re-seated everything onto the new one.
  owned_part_ = std::move(shrunk);
}

void ResilientPcg::rejoin_full_cluster() {
  // The retired ranks came back: redistribute the live state onto the
  // construction-time partition and continue the trajectory exactly. The
  // engine drops its strategy state around this hook (try_rejoin) — the
  // following storage stages replenish it on the re-expanded map.
  const Vector xg = x_->gather_global();
  const Vector rg = r_->gather_global();
  const Vector zg = z_->gather_global();
  const Vector pg = p_->gather_global();
  rebuild_on_partition(*orig_part_, xg, rg, zg, pg);
  owned_part_.reset();
}

real_t ResilientPcg::dot(const DistVector& a, const DistVector& b) {
  // Nodes are reduced in rank order over fixed chunks (parallel_reduce), so
  // the global dot is reproducible run-to-run at any fixed thread count.
  const BlockRowPartition& part = cluster_->partition();
  const auto nodes = static_cast<index_t>(part.num_nodes());
  const real_t total = parallel_reduce(
      index_t{0}, nodes, kNodeReduceGrain, real_t{0},
      [&](index_t lo, index_t hi) {
        real_t acc = 0;
        for (index_t i = lo; i < hi; ++i) {
          const auto s = static_cast<rank_t>(i);
          acc += vec_dot(a.local(s), b.local(s));
          cluster_->add_compute(s,
                                2.0 * static_cast<double>(part.local_size(s)));
        }
        return acc;
      });
  cluster_->allreduce(1, CommCategory::allreduce);
  return total;
}

std::pair<real_t, real_t> ResilientPcg::dot2(const DistVector& a,
                                             const DistVector& b,
                                             const DistVector& c,
                                             const DistVector& d) {
  const BlockRowPartition& part = cluster_->partition();
  using Pair = std::pair<real_t, real_t>;
  const auto nodes = static_cast<index_t>(part.num_nodes());
  const Pair total = parallel_reduce(
      index_t{0}, nodes, kNodeReduceGrain, Pair{0, 0},
      [&](index_t lo, index_t hi) {
        Pair acc{0, 0};
        for (index_t i = lo; i < hi; ++i) {
          const auto s = static_cast<rank_t>(i);
          acc.first += vec_dot(a.local(s), b.local(s));
          acc.second += vec_dot(c.local(s), d.local(s));
          cluster_->add_compute(s,
                                4.0 * static_cast<double>(part.local_size(s)));
        }
        return acc;
      },
      [](Pair x, Pair y) {
        return Pair{x.first + y.first, x.second + y.second};
      });
  cluster_->allreduce(2, CommCategory::allreduce);
  return total;
}

void ResilientPcg::axpy2(DistVector& y1, real_t a1, const DistVector& x1,
                         DistVector& y2, real_t a2, const DistVector& x2) {
  const BlockRowPartition& part = cluster_->partition();
  const auto nodes = static_cast<index_t>(part.num_nodes());
  parallel_for(index_t{0}, nodes, node_grain(part.num_nodes()),
               [&](index_t lo, index_t hi) {
                 for (index_t i = lo; i < hi; ++i) {
                   const auto s = static_cast<rank_t>(i);
                   fused_axpy2(y1.local(s), a1, x1.local(s), y2.local(s), a2,
                               x2.local(s));
                   cluster_->add_compute(
                       s, 4.0 * static_cast<double>(part.local_size(s)));
                 }
               });
}

void ResilientPcg::xpby(DistVector& y, const DistVector& x, real_t beta) {
  const BlockRowPartition& part = cluster_->partition();
  const auto nodes = static_cast<index_t>(part.num_nodes());
  parallel_for(index_t{0}, nodes, node_grain(part.num_nodes()),
               [&](index_t lo, index_t hi) {
                 for (index_t i = lo; i < hi; ++i) {
                   const auto s = static_cast<rank_t>(i);
                   vec_xpby(y.local(s), x.local(s), beta);
                   cluster_->add_compute(
                       s, 2.0 * static_cast<double>(part.local_size(s)));
                 }
               });
}

void ResilientPcg::apply_precond(const DistVector& r, DistVector& z) {
  const BlockRowPartition& part = cluster_->partition();
  const auto nodes = static_cast<index_t>(part.num_nodes());
  parallel_for(index_t{0}, nodes, node_grain(part.num_nodes()),
               [&](index_t lo, index_t hi) {
                 for (index_t i = lo; i < hi; ++i) {
                   const auto s = static_cast<rank_t>(i);
                   const CsrMatrix& ps =
                       precond_local_[static_cast<std::size_t>(i)];
                   ps.spmv(r.local(s), z.local(s));
                   cluster_->add_compute(
                       s, static_cast<double>(ps.spmv_flops()));
                 }
               });
}

void ResilientPcg::initialize_state(std::span<const real_t> b,
                                    std::span<const real_t> x0) {
  const BlockRowPartition& part = cluster_->partition();
  if (x0.empty()) {
    x_->zero_all();
    // r(0) = b with a zero initial guess: no SpMV needed.
    r_->set_from_global(b);
  } else {
    x_->set_from_global(x0);
    engine_->spmv(*x_, *r_);
    DistVector b_dist(part, b);
    const auto nodes = static_cast<index_t>(part.num_nodes());
    parallel_for(index_t{0}, nodes, node_grain(part.num_nodes()),
                 [&](index_t lo, index_t hi) {
                   for (index_t i = lo; i < hi; ++i) {
                     const auto s = static_cast<rank_t>(i);
                     vec_sub(b_dist.local(s), r_->local(s), r_->local(s));
                     cluster_->add_compute(
                         s, static_cast<double>(part.local_size(s)));
                   }
                 });
  }
  apply_precond(*r_, *z_);
  p_->copy_from(*z_);
  beta_ = 0;
  cluster_->complete_step();
}

bool ResilientPcg::reconstruct_lost(StateSnapshot& stars,
                                    const RedundantCopy& prev,
                                    const RedundantCopy& cur,
                                    std::span<const rank_t> failed,
                                    std::span<const real_t> b,
                                    RecoveryRecord& record) {
  const BlockRowPartition& part = cluster_->partition();
  ReconstructionInputs in;
  in.a = a_;
  in.p_action = precond_->action_matrix();
  in.formulation = opts_.precond_formulation;
  in.p_matrix = precond_->matrix_form();
  in.z_star = &stars.vec(2);
  in.part = &part;
  in.failed = failed;
  in.p_prev = &prev;
  in.p_cur = &cur;
  in.beta_prev = stars.scalar(0); // beta^(j*-1), captured with the snapshot
  in.x_star = &stars.vec(0);
  in.r_star = &stars.vec(1);
  in.b_global = b;
  in.inner_rtol = opts_.inner_rtol;
  in.inner_max_iterations = opts_.inner_max_iterations;
  in.inner_block_size = opts_.inner_block_size;
  const ReconstructionOutput out = reconstruct_state(in, *cluster_);
  if (!out.ok) return false;

  // Survivors roll back to the star copies; replacements receive the
  // reconstructed entries.
  x_->copy_from(stars.vec(0));
  r_->copy_from(stars.vec(1));
  z_->copy_from(stars.vec(2));
  p_->copy_from(stars.vec(3));
  write_lost_entries(*x_, out.lost, out.x_f);
  write_lost_entries(*r_, out.lost, out.r_f);
  write_lost_entries(*z_, out.lost, out.z_f);
  write_lost_entries(*p_, out.lost, out.p_f);
  // The replacements' star copies are the state just reconstructed.
  stars.vec(0).copy_from(*x_);
  stars.vec(1).copy_from(*r_);
  stars.vec(2).copy_from(*z_);
  stars.vec(3).copy_from(*p_);
  beta_ = stars.scalar(0);
  record.inner_iterations_precond = out.inner_iterations_precond;
  record.inner_iterations_matrix = out.inner_iterations_matrix;
  return true;
}

void ResilientPcg::inject_sdc(index_t j, ResilientSolveResult& result) {
  static_assert(sizeof(real_t) == sizeof(std::uint64_t),
                "bit-flip injection assumes 64-bit reals");
  for (std::size_t k = 0; k < opts_.sdc_events.size(); ++k) {
    const SdcEvent& e = opts_.sdc_events[k];
    if (sdc_fired_[k] || !e.enabled() || e.iteration != j) continue;
    sdc_fired_[k] = 1;
    if (e.target == "checkpoint" || e.target == "pcopy") {
      // Redundant-state corruption: the flip lands in the stored buddy
      // checkpoint / the newest redundancy-queue copy and lies dormant
      // until a recovery consults (and checksum-rejects) it. rank = -1
      // means there was nothing to corrupt yet — still reported honestly.
      SdcRecord rec;
      rec.event = e;
      rec.rank = resilience_.corrupt_redundant_state(e);
      result.sdc.push_back(rec);
      if (sdc_callback_) sdc_callback_(rec);
      continue;
    }
    const BlockRowPartition& cp = cluster_->partition();
    DistVector* v = e.target == "x" ? x_.get()
                    : e.target == "r" ? r_.get()
                                      : p_.get();
    const rank_t owner = cp.owner(e.index);
    const index_t loc = cp.to_local(e.index);
    auto slice = v->local(owner);
    std::uint64_t bits = 0;
    std::memcpy(&bits, &slice[static_cast<std::size_t>(loc)], sizeof bits);
    bits ^= std::uint64_t{1} << e.bit;
    std::memcpy(&slice[static_cast<std::size_t>(loc)], &bits, sizeof bits);
    SdcRecord rec;
    rec.event = e;
    rec.rank = owner;
    result.sdc.push_back(rec);
    if (sdc_callback_) sdc_callback_(rec);
  }
}

ResilientSolveResult ResilientPcg::solve(std::span<const real_t> b,
                                         std::span<const real_t> x0) {
  const BlockRowPartition& part = cluster_->partition();
  const index_t n = a_->rows();
  ESRP_CHECK(static_cast<index_t>(b.size()) == n);
  ESRP_CHECK(x0.empty() || static_cast<index_t>(x0.size()) == n);
  const index_t T = opts_.interval;

  WallTimer timer;
  const double model_t0 = cluster_->modeled_time();
  ResilientSolveResult result;

  x_ = std::make_unique<DistVector>(part);
  r_ = std::make_unique<DistVector>(part);
  z_ = std::make_unique<DistVector>(part);
  p_ = std::make_unique<DistVector>(part);
  ap_ = std::make_unique<DistVector>(part);
  resilience_.begin_solve(*cluster_);
  beta_dstar_ = 0;
  sdc_fired_.assign(opts_.sdc_events.size(), 0);

  // The SolverState contract plus the classic-recurrence hooks the engine
  // orchestrates on a failure.
  ResilienceEngine::Client client;
  client.state = [this] { return solver_state(); };
  client.restart = [this, b, x0] {
    initialize_state(b, x0);
    beta_dstar_ = 0;
  };
  client.repartition = [this](std::span<const rank_t> failed) {
    repartition(failed);
  };
  client.rejoin = [this] { rejoin_full_cluster(); };
  client.reconstruct = [this, b](StateSnapshot& stars,
                                 const RedundantCopy& prev,
                                 const RedundantCopy& cur,
                                 std::span<const rank_t> failed,
                                 RecoveryRecord& record) {
    return reconstruct_lost(stars, prev, cur, failed, b, record);
  };

  DistVector b_dist(part, b);
  const real_t bnorm = std::sqrt(dot(b_dist, b_dist));
  ESRP_CHECK_MSG(bnorm > 0, "right-hand side must be non-zero");

  initialize_state(b, x0);
  // <r,z> and ||r||^2 merged into one sweep + one allreduce (the unfused
  // pair posted two single-scalar allreduces).
  auto [rz, rr0] = dot2(*r_, *z_, *r_, *r_);
  real_t rnorm = std::sqrt(rr0);

  index_t j = 0;
  index_t executed = 0;

  while (true) {
    result.final_relres = rnorm / bnorm;
    // The sequential solvers' callback contract: the observer sees the
    // converging check and every executed body, but not the bare
    // iteration-cap exit (their loop bound ends without a final callback).
    if (result.final_relres < opts_.rtol) {
      if (progress_) progress_(j, result.final_relres);
      result.converged = true;
      break;
    }
    if (executed >= opts_.max_iterations) break;
    if (progress_) progress_(j, result.final_relres);

    if (hook_) hook_(j, *x_, *r_, *z_, *p_);

    // --- Rejoin rung: at a storage-cadence iteration, retired ranks come
    // back and the solve re-expands onto the full cluster (policy-gated;
    // no-op under the default policy). ---
    {
      RecoveryRecord rejoin_rec;
      if (resilience_.try_rejoin(j, client, rejoin_rec))
        result.recoveries.push_back(rejoin_rec);
    }

    // --- Storage / checkpoint phase (Alg. 3 lines 4-12) ---
    const ResilienceEngine::StoragePlan stores = resilience_.storage_plan(j);
    if (resilience_.checkpoint_due(j))
      resilience_.store_checkpoint(j, solver_state());

    // --- SpMV phase ---
    if (stores.store()) {
      resilience_.push_copy(engine_->aspmv(*aug_, *p_, j, *ap_));
      if (stores.second_store) {
        // beta currently holds beta^(j-1), the value Alg. 2 needs; for
        // T >= 3 it equals the beta** captured at the end of iteration mT.
        if (T > 1 && j > T + 1) ESRP_CHECK(beta_ == beta_dstar_);
        resilience_.save_snapshot(j, solver_state());
        if (resilience_.has_copy(j - 1)) resilience_.set_recoverable(j);
      }
    } else {
      engine_->spmv(*p_, *ap_);
    }

    // --- Failure injection (paper §4: zero out at the marked iteration) ---
    if (const FailureEvent* event = resilience_.pending_event(j)) {
      RecoveryRecord record;
      j = resilience_.recover(*event, j, client, record);
      // A redundant-state corruption (SDC target checkpoint/pcopy) is
      // detected exactly when a recovery checksum-rejects the state it
      // corrupted — mirror that verdict into the pending SDC records.
      if (record.copies_corrupt > 0 || record.checkpoints_corrupt > 0) {
        for (SdcRecord& rec : result.sdc) {
          if (rec.detected) continue;
          if ((rec.event.target == "pcopy" && record.copies_corrupt > 0) ||
              (rec.event.target == "checkpoint" &&
               record.checkpoints_corrupt > 0)) {
            rec.detected = true;
            rec.detected_at = record.failed_at;
          }
        }
      }
      result.recoveries.push_back(record);
      const auto [rz_rec, rr_rec] = dot2(*r_, *z_, *r_, *r_);
      rz = rz_rec;
      rnorm = std::sqrt(rr_rec);
      ++executed;
      continue;
    }

    // --- SDC injection (scenario lab): the flip lands after the SpMV, so
    // a corrupted p desynchronizes the x update from the r update and the
    // damage is observable as recursive-vs-true residual drift. ---
    if (!opts_.sdc_events.empty()) inject_sdc(j, result);

    // --- CG updates (Alg. 3 lines 13-18) ---
    const real_t pap = dot(*p_, *ap_);
    ESRP_CHECK_MSG(pap > 0, "p^T A p <= 0 at iteration " << j);
    const real_t alpha = rz / pap;
    axpy2(*x_, alpha, *p_, *r_, -alpha, *ap_);
    apply_precond(*r_, *z_);
    const auto [rz_next, rr] = dot2(*r_, *z_, *r_, *r_);
    beta_ = rz_next / rz;
    rz = rz_next;
    rnorm = std::sqrt(rr);
    xpby(*p_, *z_, beta_);
    if (opts_.strategy == Strategy::esrp && T > 1 && stores.first_store)
      beta_dstar_ = beta_; // the paper's beta** = beta^(mT)

    // --- Residual replacement (van der Vorst & Ye, the paper's [27]) ---
    if (opts_.residual_replacement > 0 &&
        (j + 1) % opts_.residual_replacement == 0) {
      engine_->spmv(*x_, *ap_); // ap_ reused as scratch for A x
      // Index b by global offset: a no-spare recovery may have changed the
      // partition since b_dist was built.
      const BlockRowPartition& cp = cluster_->partition();
      const auto cn = static_cast<index_t>(cp.num_nodes());
      parallel_for(index_t{0}, cn, node_grain(cp.num_nodes()),
                   [&](index_t lo, index_t hi) {
                     for (index_t i = lo; i < hi; ++i) {
                       const auto sr = static_cast<rank_t>(i);
                       auto rs = r_->local(sr);
                       vec_sub(b.subspan(static_cast<std::size_t>(cp.begin(sr)),
                                         rs.size()),
                               ap_->local(sr), rs);
                       cluster_->add_compute(
                           sr, static_cast<double>(cp.local_size(sr)));
                     }
                   });
      apply_precond(*r_, *z_);
      const auto [rz_new, rr_new] = dot2(*r_, *z_, *r_, *r_);
      rz = rz_new;
      const real_t rnorm_recursive = rnorm;
      rnorm = std::sqrt(rr_new);
      // SDC detection: a large relative gap between the recursive residual
      // norm and the freshly recomputed one means the recurrences and the
      // true state disagree — the signature of a bit-flip. Benign drift
      // (Eq. 2 of the paper) is orders of magnitude below the threshold.
      if (!result.sdc.empty()) {
        const real_t gap = std::abs(rnorm_recursive - rnorm) /
                           std::max(rnorm, real_t{1e-300});
        for (SdcRecord& rec : result.sdc) {
          if (rec.detected) continue;
          rec.discrepancy = std::max(rec.discrepancy, gap);
          if (gap > opts_.sdc_threshold) {
            rec.detected = true;
            rec.detected_at = j;
          }
        }
      }
    }
    cluster_->complete_step();

    ++j;
    ++executed;
  }

  result.trajectory_iterations = j;
  result.executed_iterations = executed;
  result.modeled_time = cluster_->modeled_time() - model_t0;
  result.wall_seconds = timer.seconds();
  result.x = x_->gather_global();
  result.r = r_->gather_global();
  return result;
}

} // namespace esrp
