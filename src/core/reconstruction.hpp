// Exact state reconstruction — the paper's Alg. 2, run by the replacement
// nodes after a failure:
//
//   1. retrieve static data A_{I_f,I}, P_{I_f,I}, b_{I_f}   (safe storage)
//   2. gather surviving r_{I\I_f}, x_{I\I_f}                (rolled-back state)
//   3. retrieve beta^(j-1) and the redundant copies p'^(j-1)_{I_f}, p'^(j)_{I_f}
//   4. z_{I_f}  = p^(j)_{I_f} - beta^(j-1) p^(j-1)_{I_f}
//   5. v        = z_{I_f} - P_{I_f,I\I_f} r_{I\I_f}
//   6. solve P_{I_f,I_f} r_{I_f} = v          (inner PCG, rtol 1e-14)
//   7. w        = b_{I_f} - r_{I_f} - A_{I_f,I\I_f} x_{I\I_f}
//   8. solve A_{I_f,I_f} x_{I_f} = w          (inner PCG, rtol 1e-14)
//
// P is the explicit preconditioner action matrix (paper setup: block Jacobi
// with node-aligned blocks, in which case P_{I_f,I\I_f} = 0 and both inner
// systems are SPD). Inner systems are preconditioned with block Jacobi of
// the extracted submatrix, as in the paper's experiments.
//
// Communication (gathers, scalar retrieval) and computation (inner solves)
// are charged to the SimCluster under CommCategory::recovery; static-data
// reloading is deliberately *not* charged, matching the paper's measurement
// protocol (§4).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "comm/exchange.hpp"
#include "netsim/cluster.hpp"
#include "netsim/dist_vector.hpp"
#include "partition/index_set.hpp"
#include "sparse/csr.hpp"

namespace esrp {

/// How the preconditioner enters the reconstruction (paper reference [20]):
///   inverse — P is the explicit *action* (z = P r): recover r by solving
///             P_{I_f,I_f} r_{I_f} = z_{I_f} - P_{I_f,I\I_f} r_{I\I_f};
///   matrix  — M is the preconditioner *itself* (M z = r): recover r
///             directly as r_{I_f} = M_{I_f,I_f} z_{I_f} +
///             M_{I_f,I\I_f} z_{I\I_f}, with no inner solve.
enum class PrecondFormulation { inverse, matrix };

std::string to_string(PrecondFormulation f);

/// Inverse of to_string(PrecondFormulation): "inverse" | "matrix". Throws
/// esrp::Error on anything else, naming the valid spellings.
PrecondFormulation formulation_from_string(std::string_view name);

struct ReconstructionInputs {
  const CsrMatrix* a = nullptr;         ///< system matrix (static data)
  const CsrMatrix* p_action = nullptr;  ///< explicit preconditioner action
  PrecondFormulation formulation = PrecondFormulation::inverse;
  const CsrMatrix* p_matrix = nullptr;  ///< M, required for ::matrix
  const DistVector* z_star = nullptr;   ///< surviving z, required for ::matrix
  const BlockRowPartition* part = nullptr;
  std::span<const rank_t> failed;       ///< failed = replacement ranks
  const RedundantCopy* p_prev = nullptr; ///< p'^(j*-1)
  const RedundantCopy* p_cur = nullptr;  ///< p'^(j*)
  real_t beta_prev = 0;                  ///< beta^(j*-1) (the solver's beta*)
  const DistVector* x_star = nullptr;    ///< surviving x at the target state
  const DistVector* r_star = nullptr;    ///< surviving r at the target state
  std::span<const real_t> b_global;      ///< right-hand side (static data)
  real_t inner_rtol = 1e-14;
  index_t inner_max_iterations = 0;      ///< 0 = PCG default
  index_t inner_block_size = 10;         ///< block Jacobi size, inner solves
};

struct ReconstructionOutput {
  bool ok = false;          ///< false: a redundant copy did not survive
  IndexSet lost;            ///< I_f (sorted)
  Vector x_f, r_f, z_f, p_f; ///< reconstructed entries, compact over I_f
  /// The gathered I_f entries of the *older* copy p'^(j*-1). The classic
  /// recovery only needs p'^(j*) (= p_f), but the pipelined recurrences
  /// roll back to the older tag, where the search direction is this one
  /// (pipelined/pipelined_esr.hpp).
  Vector p_prev_f;
  index_t inner_iterations_precond = 0; ///< PCG iterations for P_{I_f,I_f}
  index_t inner_iterations_matrix = 0;  ///< PCG iterations for A_{I_f,I_f}
  double flops = 0;          ///< total reconstruction floating-point work
};

ReconstructionOutput reconstruct_state(const ReconstructionInputs& in,
                                       SimCluster& cluster);

/// One derived step of the pipelined reconstruction (ref. [16]): rows I_f
/// of `m` applied to the full vector whose I_f entries are `v_f` (compact
/// over `lost`) and whose surviving entries come from the rolled-back star
/// vector `v_star`:
///
///   out = M_{I_f,I_f} v_f + M_{I_f,I\I_f} v_star_{I\I_f}.
///
/// Charges the gather of the referenced surviving entries (category
/// recovery, one message per (owner, replacement) pair) and accumulates the
/// floating-point work into `flops`; the caller spreads the compute charge
/// over the replacement nodes.
Vector reconstruct_row_product(const CsrMatrix& m, const IndexSet& lost,
                               const BlockRowPartition& part,
                               std::span<const real_t> v_f,
                               const DistVector& v_star, SimCluster& cluster,
                               double& flops);

} // namespace esrp
