// SolveService — the prepare/solve split over the esrp::solve facade.
//
//   SolveService svc;
//   auto [handle, hit] = svc.prepare(ProblemSpec{.matrix = "poisson2d:24,24"},
//                                    SolverConfig{.solver = "pcg"});
//   SolveReport report = svc.solve(*handle, RunSpec{});
//
// prepare() amortizes everything that does not depend on the right-hand
// side — matrix assembly, partitioning, SpMV/ASpMV communication plans,
// preconditioner factorization — into a ProblemHandle stored in a keyed
// LRU PlanCache; repeat prepares of the same problem are cache hits that
// do zero re-factorization. solve() then routes the per-run half (rhs, x0,
// failure schedule, thread budget) through the exact same registry drivers
// as esrp::solve, injecting the prepared parts, so a service-routed solve
// is bitwise identical to the facade (tests/service/service_parity_test).
//
// Batched solves: solve_batched() takes RunSpec::rhs_batch (k right-hand
// sides) and runs the fused multi-RHS PCG (solver/batched_pcg.hpp) that
// shares each SpMV sweep across the batch; per-RHS trajectories are
// bitwise identical to k independent solve() calls.
//
// Sessions: submit() multiplexes solves onto up to max_sessions service
// worker threads, each applying a per-session ThreadBudget
// (parallel/parallel.hpp) instead of mutating the process-global thread
// count — N sessions with budgets that sum to the machine share the pool
// without interfering, and each session's solve stays deterministic at a
// fixed budget.
#pragma once

#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "api/solve_spec.hpp"
#include "common/thread_annotations.hpp"
#include "service/plan_cache.hpp"
#include "service/problem_handle.hpp"

namespace esrp {

struct ServiceOptions {
  /// LRU bound on cached prepared handles.
  std::size_t cache_capacity = 16;
  /// Concurrent solve sessions backing submit(); lazily spawned.
  int max_sessions = 4;
};

struct PrepareResult {
  std::shared_ptr<const ProblemHandle> handle;
  /// True when the handle came out of the plan cache (no re-preparation).
  bool cache_hit = false;
};

/// Per-submit session parameters.
struct SessionOptions {
  /// Thread budget for this session's solve: -1 defers to RunSpec::threads,
  /// 0 pins the hardware concurrency, n > 0 pins exactly n. Budgets are
  /// thread-local overrides (parallel/parallel.hpp) — they never touch the
  /// global thread count, so concurrent sessions cannot perturb each other.
  int threads = -1;
};

class SolveService {
public:
  explicit SolveService(ServiceOptions opts = {});
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Resolve (problem, config) to a prepared handle: cache hit when an
  /// equal content key is resident, else build and insert. Thread-safe.
  PrepareResult prepare(const ProblemSpec& problem, const SolverConfig& config);
  /// Convenience: prepare from a legacy aggregate spec (slices the two
  /// prepare-relevant bases).
  PrepareResult prepare(const SolveSpec& spec) { return prepare(spec, spec); }

  /// Run one solve against a prepared handle. `run.rhs` empty means the
  /// handle's default rhs (xp::make_rhs). Validates the assembled spec,
  /// applies the RunSpec thread budget, and dispatches through
  /// detail::run_resolved with the handle's prepared parts. Thread-safe:
  /// any number of threads may solve against the same handle.
  SolveReport solve(const ProblemHandle& handle, const RunSpec& run,
                    SolverObserver* observer = nullptr) const;

  /// Run RunSpec::rhs_batch (k >= 1 right-hand sides) through the fused
  /// multi-RHS kernel, sharing each SpMV sweep across the batch. Requires a
  /// solver registered with supports_batched_rhs ("pcg"). Returns one
  /// report per rhs, in batch order; each converges independently and is
  /// bitwise identical to the corresponding single-RHS solve().
  std::vector<SolveReport> solve_batched(const ProblemHandle& handle,
                                         const RunSpec& run) const;

  /// Enqueue a solve on the session workers and return its future. The
  /// handle is held by shared_ptr for the duration (safe against cache
  /// eviction); the RunSpec is taken by value (its owning storage moves
  /// with it — see RunSpec::take_rhs). Errors surface through the future.
  std::future<SolveReport> submit(std::shared_ptr<const ProblemHandle> handle,
                                  RunSpec run, SessionOptions session = {});

  PlanCache::Stats cache_stats() const { return cache_.stats(); }
  void clear_cache() { cache_.clear(); }

private:
  SolveSpec assemble(const ProblemHandle& handle, const RunSpec& run) const;
  void session_loop();

  ServiceOptions opts_;
  mutable PlanCache cache_;

  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> jobs_ ESRP_GUARDED_BY(mu_);
  // Lazily spawned by submit(); swapped out under the lock and joined in the
  // destructor. Session workers are the one sanctioned std::thread use
  // outside src/parallel (they multiplex solves, they are not kernel
  // executors), blessed for esrp_lint below.
  std::vector<std::thread> sessions_ ESRP_GUARDED_BY(mu_); // esrp-lint: allow(raw-thread)
  bool stop_ ESRP_GUARDED_BY(mu_) = false;
};

} // namespace esrp
