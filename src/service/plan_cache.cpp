#include "service/plan_cache.hpp"

#include "service/problem_handle.hpp"

namespace esrp {

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity) {}

std::shared_ptr<const ProblemHandle> PlanCache::find(const std::string& key) {
  MutexLock lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second); // refresh recency
  return it->second->second;
}

void PlanCache::insert(const std::string& key,
                       std::shared_ptr<const ProblemHandle> handle) {
  MutexLock lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(handle);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(handle));
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

PlanCache::Stats PlanCache::stats() const {
  MutexLock lock(mu_);
  return Stats{hits_, misses_, evictions_, lru_.size(), capacity_};
}

void PlanCache::clear() {
  MutexLock lock(mu_);
  lru_.clear();
  index_.clear();
}

} // namespace esrp
