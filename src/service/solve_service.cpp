#include "service/solve_service.hpp"

#include <utility>

#include "api/registry.hpp"
#include "api/solve.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "common/vec.hpp"
#include "parallel/parallel.hpp"
#include "solver/batched_pcg.hpp"

namespace esrp {

namespace {

/// RunSpec::threads / SessionOptions::threads -> ThreadBudget argument:
/// negative defers to the caller's ambient setting (inactive budget), 0
/// pins the hardware concurrency, n pins exactly n. Mirrors the facade's
/// ThreadOverride semantics, but as a thread-local budget so concurrent
/// sessions never touch the global count.
int resolve_budget(int threads) {
  if (threads < 0) return 0; // ThreadBudget(0) is inactive
  if (threads == 0) return hardware_threads();
  return threads;
}

} // namespace

SolveService::SolveService(ServiceOptions opts)
    : opts_(opts), cache_(opts.cache_capacity) {
  if (opts_.max_sessions < 1)
    throw Error("ServiceOptions::max_sessions must be >= 1, got " +
                std::to_string(opts_.max_sessions));
}

SolveService::~SolveService() {
  // Swap the workers out under the lock (sessions_ is guarded); join
  // outside it so a session draining its last job can still take mu_.
  std::vector<std::thread> sessions; // esrp-lint: allow(raw-thread)
  {
    MutexLock lock(mu_);
    stop_ = true;
    sessions.swap(sessions_);
  }
  cv_.notify_all();
  for (std::thread& t : sessions) t.join(); // esrp-lint: allow(raw-thread)
}

PrepareResult SolveService::prepare(const ProblemSpec& problem,
                                    const SolverConfig& config) {
  const std::string key = ProblemHandle::content_key(problem, config);
  if (auto cached = cache_.find(key)) return PrepareResult{cached, true};
  auto handle = ProblemHandle::build(problem, config);
  cache_.insert(key, handle);
  return PrepareResult{handle, false};
}

SolveSpec SolveService::assemble(const ProblemHandle& handle,
                                 const RunSpec& run) const {
  SolveSpec spec;
  static_cast<ProblemSpec&>(spec) = handle.problem();
  static_cast<SolverConfig&>(spec) = handle.config();
  static_cast<RunSpec&>(spec) = run; // owning spans re-point (solve_spec.hpp)
  // The handle's matrix is the problem; the thread budget is applied by the
  // caller (never through the facade's global override).
  spec.matrix_data = &handle.matrix();
  spec.matrix_name = handle.name();
  spec.threads = -1;
  return spec;
}

SolveReport SolveService::solve(const ProblemHandle& handle, const RunSpec& run,
                                SolverObserver* observer) const {
  if (!run.rhs_batch.empty())
    throw Error("RunSpec::rhs_batch is solved through "
                "SolveService::solve_batched, not solve()");
  const SolveSpec spec = assemble(handle, run);
  validate_spec(spec);
  const std::span<const real_t> b =
      spec.rhs.empty() ? handle.default_rhs() : spec.rhs;
  const ThreadBudget budget(resolve_budget(run.threads));
  const PreparedParts parts = handle.parts();
  return detail::run_resolved(spec, handle.matrix(), handle.name(), b,
                              observer, &parts);
}

std::vector<SolveReport> SolveService::solve_batched(
    const ProblemHandle& handle, const RunSpec& run) const {
  const SolveSpec spec = assemble(handle, run);
  validate_spec(spec); // enforces rhs_batch shape + solver capability
  if (spec.rhs_batch.empty())
    throw Error("solve_batched needs RunSpec::rhs_batch (use solve() for a "
                "single right-hand side)");

  const CsrMatrix& a = handle.matrix();
  const std::size_t n = static_cast<std::size_t>(a.rows());
  const std::size_t k = spec.rhs_batch.size();
  for (const Vector& b : spec.rhs_batch)
    ESRP_CHECK_MSG(b.size() == n,
                   "rhs_batch entries must match the matrix dimension");
  ESRP_CHECK_MSG(spec.x0.empty() || spec.x0.size() == n,
                 "x0 must be empty or match the matrix dimension");

  const ThreadBudget budget(resolve_budget(run.threads));

  // One solution buffer per system; a non-empty x0 seeds every system, the
  // same guess the corresponding single-RHS solves would use.
  std::vector<Vector> xs(k, Vector(n, 0));
  if (!spec.x0.empty())
    for (Vector& x : xs) vec_copy(spec.x0, x);

  std::vector<std::span<const real_t>> b_spans;
  std::vector<std::span<real_t>> x_spans;
  b_spans.reserve(k);
  x_spans.reserve(k);
  for (std::size_t j = 0; j < k; ++j) {
    b_spans.emplace_back(spec.rhs_batch[j]);
    x_spans.emplace_back(xs[j]);
  }

  PcgOptions opts;
  opts.rtol = spec.rtol;
  opts.max_iterations = spec.max_iterations;
  WallTimer timer;
  BatchedPcgResult res =
      batched_pcg_solve(a, b_spans, x_spans, &handle.precond(), opts);
  const double wall = timer.seconds();

  std::vector<SolveReport> reports(k);
  for (std::size_t j = 0; j < k; ++j) {
    SolveReport& report = reports[j];
    report.solver = spec.solver;
    report.precond = spec.precond;
    report.matrix = handle.name();
    report.rows = a.rows();
    report.nnz = a.nnz();
    report.converged = res.per_rhs[j].converged;
    report.iterations = res.per_rhs[j].iterations;
    report.executed_iterations = res.per_rhs[j].iterations;
    report.final_relres = res.per_rhs[j].final_relres;
    report.flops = res.per_rhs[j].flops;
    report.wall_seconds = wall; // the batch ran as one; every report gets it
    report.x = std::move(xs[j]);
  }
  return reports;
}

std::future<SolveReport> SolveService::submit(
    std::shared_ptr<const ProblemHandle> handle, RunSpec run,
    SessionOptions session) {
  ESRP_CHECK_MSG(handle != nullptr, "submit() needs a prepared handle");
  auto promise = std::make_shared<std::promise<SolveReport>>();
  std::future<SolveReport> future = promise->get_future();
  {
    MutexLock lock(mu_);
    if (stop_) throw Error("SolveService is shutting down");
    while (static_cast<int>(sessions_.size()) < opts_.max_sessions)
      sessions_.emplace_back([this] { session_loop(); });
    jobs_.emplace_back([this, handle = std::move(handle), run = std::move(run),
                        session, promise]() mutable {
      try {
        if (session.threads >= 0) run.threads = session.threads;
        promise->set_value(solve(*handle, run));
      } catch (...) {
        promise->set_exception(std::current_exception());
      }
    });
  }
  cv_.notify_one();
  return future;
}

void SolveService::session_loop() {
  for (;;) {
    std::function<void()> job;
    {
      MutexLock lock(mu_);
      while (!stop_ && jobs_.empty()) cv_.wait(mu_);
      if (jobs_.empty()) return; // stop_ set and queue drained
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    job();
  }
}

} // namespace esrp
