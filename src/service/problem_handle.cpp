#include "service/problem_handle.hpp"

#include <cstdint>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "common/fnv.hpp"
#include "xp/experiment.hpp"

namespace esrp {

namespace {

// FNV-1a-64 (common/fnv.hpp) — same constants as the parity tests'
// trajectory hashes, so a key printed in a failing test can be compared
// against a handle key directly.
std::uint64_t matrix_content_hash(const CsrMatrix& a) {
  std::uint64_t h = fnv1a(a.row_ptr().data(), a.row_ptr().size_bytes());
  h = fnv1a(a.col_idx().data(), a.col_idx().size_bytes(), h);
  return fnv1a(a.values().data(), a.values().size_bytes(), h);
}

} // namespace

std::string ProblemHandle::content_key(const ProblemSpec& problem,
                                       const SolverConfig& config) {
  std::ostringstream key;
  if (problem.matrix_data != nullptr) {
    const CsrMatrix& a = *problem.matrix_data;
    key << "data:" << a.rows() << "x" << a.cols() << ":nnz=" << a.nnz()
        << ":fnv=" << std::hex << matrix_content_hash(a) << std::dec;
  } else {
    key << "key:" << problem.matrix;
  }
  // The preconditioner factorization depends on the full parameter surface;
  // keying on all of it keeps equal keys implying equal factorizations.
  key << "|precond=" << problem.precond << ",bs=" << problem.block_size
      << ",omega=" << problem.ssor_omega << ",shift=" << problem.ic0_shift;
  // Distributed handles carry partition-aligned artifacts (partition, SpMV /
  // ASpMV plans, per-node preconditioner blocks); sequential handles carry a
  // single-domain factorization. nodes/phi only shape the former.
  const bool distributed = solver_registry().get(config.solver).distributed;
  key << "|dist=" << (distributed ? 1 : 0);
  if (distributed)
    key << ",nodes=" << problem.nodes << ",phi=" << config.phi;
  return key.str();
}

std::shared_ptr<const ProblemHandle> ProblemHandle::build(
    const ProblemSpec& problem, const SolverConfig& config) {
  // make_shared needs a public ctor; the aliasing-free way around the
  // private default ctor is a derived helper local to this function.
  struct Concrete : ProblemHandle {};
  auto handle = std::make_shared<Concrete>();

  handle->key_ = content_key(problem, config); // validates config.solver too
  handle->config_ = config;
  handle->problem_ = problem;

  if (problem.matrix_data != nullptr) {
    handle->matrix_ = *problem.matrix_data;
    handle->name_ =
        problem.matrix_name.empty() ? "custom" : problem.matrix_name;
  } else {
    TestProblem tp = resolve_matrix(problem.matrix);
    handle->matrix_ = std::move(tp.matrix);
    handle->name_ = std::move(tp.name);
  }
  // The handle is self-contained: its ProblemSpec points at its own matrix
  // copy, never the caller's buffer.
  handle->problem_.matrix_data = &handle->matrix_;
  handle->problem_.matrix_name = handle->name_;

  if (handle->matrix_.rows() != handle->matrix_.cols())
    throw Error("prepare requires a square matrix, got " +
                std::to_string(handle->matrix_.rows()) + " x " +
                std::to_string(handle->matrix_.cols()));

  handle->default_rhs_ = xp::make_rhs(handle->matrix_);

  const bool distributed = solver_registry().get(config.solver).distributed;
  if (distributed) {
    handle->partition_ = std::make_unique<BlockRowPartition>(
        handle->matrix_.rows(), problem.nodes);
    handle->spmv_plan_ =
        std::make_unique<SpmvPlan>(handle->matrix_, *handle->partition_);
    handle->aspmv_plan_ =
        std::make_unique<AspmvPlan>(*handle->spmv_plan_, config.phi);
  }

  // Factorize exactly as the facade drivers would: partition-aligned for
  // distributed solvers (resolve_precond passes the cluster partition),
  // single-domain for sequential ones (null partition).
  SolveSpec factorize_spec;
  static_cast<ProblemSpec&>(factorize_spec) = handle->problem_;
  static_cast<SolverConfig&>(factorize_spec) = config;
  handle->precond_ = precond_registry().get(problem.precond).make(
      PrecondContext{handle->matrix_, handle->partition_.get(),
                     factorize_spec});

  return handle;
}

} // namespace esrp
