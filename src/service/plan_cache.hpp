// PlanCache — a keyed, thread-safe, LRU-bounded cache of prepared
// ProblemHandles. This is the service-layer generalization of the
// xp::ResultCache idea (xp/result_cache.hpp): where the experiment harness
// memoizes solve *outcomes* per config hash, the plan cache memoizes the
// expensive *preparation* artifacts (assembled matrix, communication plans,
// factorized preconditioner) under a content key, so repeat prepares of the
// same problem re-use one handle and do zero re-factorization (counter-
// asserted by tests/service/plan_cache_test.cpp).
//
// Concurrency: all operations take one internal mutex. Values are
// shared_ptr<const ProblemHandle>, so an eviction never invalidates a
// handle that a running solve still holds — the handle dies with its last
// reference. Two threads that miss the same key concurrently may both
// build; the second insert simply replaces the first (both handles are
// bitwise-equivalent by construction), which keeps the fast path lock-free
// of any build work.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "common/thread_annotations.hpp"

namespace esrp {

class ProblemHandle;

class PlanCache {
public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t size = 0;     ///< entries currently cached
    std::size_t capacity = 0; ///< LRU bound
  };

  /// `capacity` bounds the number of cached handles; the least recently
  /// used entry is evicted when a fresh insert exceeds it. Capacity 0 is
  /// legal (every insert evicts immediately — effectively a disabled
  /// cache that still counts traffic).
  explicit PlanCache(std::size_t capacity = 16);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Look up `key`. A hit refreshes recency and bumps the hit counter; a
  /// miss bumps the miss counter and returns nullptr.
  std::shared_ptr<const ProblemHandle> find(const std::string& key);

  /// Insert (or refresh) `key`. Re-inserting an existing key replaces the
  /// value and refreshes recency without counting an eviction.
  void insert(const std::string& key,
              std::shared_ptr<const ProblemHandle> handle);

  Stats stats() const;
  void clear();

private:
  using Entry = std::pair<std::string, std::shared_ptr<const ProblemHandle>>;

  mutable Mutex mu_;
  const std::size_t capacity_; ///< immutable after construction
  std::uint64_t hits_ ESRP_GUARDED_BY(mu_) = 0;
  std::uint64_t misses_ ESRP_GUARDED_BY(mu_) = 0;
  std::uint64_t evictions_ ESRP_GUARDED_BY(mu_) = 0;
  /// front = most recently used
  std::list<Entry> lru_ ESRP_GUARDED_BY(mu_);
  std::map<std::string, std::list<Entry>::iterator> index_
      ESRP_GUARDED_BY(mu_);
};

} // namespace esrp
