// ProblemHandle — the "prepare" half of the service-layer prepare/solve
// split (service/solve_service.hpp). A handle owns every amortizable
// artifact of a (ProblemSpec, SolverConfig) pair:
//
//   - the assembled CsrMatrix (copied from ProblemSpec::matrix_data, or
//     built from the matrix registry key) plus its display name,
//   - the default right-hand side xp::make_rhs builds for experiments,
//   - for distributed solvers: the BlockRowPartition, the static SpMV
//     communication plan, and the phi-augmented ASpMV plan,
//   - the factorized preconditioner (partition-aligned for distributed
//     solvers, single-domain for sequential ones — the two factorizations
//     differ, which is why the content key includes distributed-ness).
//
// Handles are immutable after build() and shared by const pointer, so any
// number of concurrent solve sessions can run against one handle without
// synchronization. Every owned artifact is a deterministic function of the
// spec fields the facade drivers would otherwise use per solve, so a solve
// through a handle is bitwise identical to the facade path — pinned by
// tests/service/service_parity_test.cpp.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "api/registry.hpp"
#include "api/solve_spec.hpp"
#include "comm/aspmv_plan.hpp"
#include "comm/spmv_plan.hpp"
#include "partition/partition.hpp"
#include "precond/preconditioner.hpp"
#include "sparse/csr.hpp"

namespace esrp {

class ProblemHandle {
public:
  /// The cache key for (problem, config): a readable string covering every
  /// field the prepared artifacts depend on. Registry-built matrices key on
  /// their spec string; caller-supplied matrix_data keys on shape, nnz, and
  /// an FNV-1a hash of the raw row/column/value bytes, so two different
  /// matrices never collide on shape alone (plan_cache_test pins this).
  static std::string content_key(const ProblemSpec& problem,
                                 const SolverConfig& config);

  /// Assemble the matrix, build the plans, and factorize the
  /// preconditioner. Throws esrp::Error on unknown registry keys or an
  /// invalid spec. This is the expensive call the PlanCache amortizes.
  static std::shared_ptr<const ProblemHandle> build(const ProblemSpec& problem,
                                                    const SolverConfig& config);

  const CsrMatrix& matrix() const { return matrix_; }
  const std::string& name() const { return name_; }
  /// The experiment-standard rhs (xp::make_rhs) used when a RunSpec leaves
  /// `rhs` empty.
  std::span<const real_t> default_rhs() const { return default_rhs_; }
  /// The problem spec this handle was prepared from, with matrix_data
  /// re-pointed at the handle's own copy (the caller's buffer is not
  /// retained past build()).
  const ProblemSpec& problem() const { return problem_; }
  const SolverConfig& config() const { return config_; }
  const std::string& key() const { return key_; }

  /// True when the configured solver runs on the simulated cluster (the
  /// handle then carries partition + plans).
  bool distributed() const { return partition_ != nullptr; }
  const Preconditioner& precond() const { return *precond_; }

  /// The injection view the solver drivers consume (api/registry.hpp).
  /// Pointers borrow from this handle — keep the handle alive across the
  /// solve (SolveService holds it by shared_ptr for exactly this reason).
  PreparedParts parts() const {
    return PreparedParts{partition_.get(), spmv_plan_.get(), aspmv_plan_.get(),
                         precond_.get()};
  }

  ProblemHandle(const ProblemHandle&) = delete;
  ProblemHandle& operator=(const ProblemHandle&) = delete;

private:
  ProblemHandle() = default;

  CsrMatrix matrix_;
  std::string name_;
  Vector default_rhs_;
  ProblemSpec problem_;
  SolverConfig config_;
  std::string key_;
  std::unique_ptr<BlockRowPartition> partition_; ///< distributed only
  std::unique_ptr<SpmvPlan> spmv_plan_;          ///< distributed only
  std::unique_ptr<AspmvPlan> aspmv_plan_;        ///< distributed only
  std::unique_ptr<Preconditioner> precond_;
};

} // namespace esrp
