// Pipelined preconditioned conjugate gradient (Ghysels & Vanroose, 2014) —
// the communication-hiding PCG variant that the paper's companion work
// (reference [16], Levonyak et al.) extends ESR to. One global reduction
// per iteration, overlapped with the SpMV and the preconditioner
// application.
//
// Recurrences (one iteration):
//   gamma = (r, u); delta = (w, u); rr = (r, r)     <- single allreduce
//   m = P w;  n = A m                               <- overlapped with it
//   beta = gamma / gamma_prev (0 initially)
//   alpha = gamma / (delta - beta * gamma / alpha_prev)
//   z <- n + beta z;  q <- m + beta q;  s <- w + beta s;  p <- u + beta p
//   x += alpha p;  r -= alpha s;  u -= alpha q;  w -= alpha z
//
// Mathematically equivalent to classic PCG in exact arithmetic; in floating
// point the extra recurrences add a little residual drift (one reason the
// paper's Eq. 2 metric exists).
#pragma once

#include <span>

#include "common/types.hpp"
#include "common/vec.hpp"
#include "precond/preconditioner.hpp"
#include "solver/pcg.hpp" // IterationCallback
#include "sparse/csr.hpp"

namespace esrp {

struct PipelinedPcgOptions {
  real_t rtol = 1e-8;
  index_t max_iterations = 0; ///< 0 = 10 * dim
};

struct PipelinedPcgResult {
  bool converged = false;
  index_t iterations = 0;
  real_t final_relres = 0;
  double flops = 0;
};

/// Sequential reference implementation. `precond` may be nullptr.
/// `on_iteration` (may be empty) is invoked once per iteration with
/// (j, ||r||/||b||), matching pcg_solve's callback contract.
PipelinedPcgResult pipelined_pcg_solve(
    const CsrMatrix& a, std::span<const real_t> b, std::span<real_t> x,
    const Preconditioner* precond, const PipelinedPcgOptions& opts = {},
    const IterationCallback& on_iteration = {});

} // namespace esrp
