#include "pipelined/pipelined_esr.hpp"

#include "common/error.hpp"

namespace esrp {

PipelinedEsrOutput reconstruct_pipelined_state(const PipelinedEsrInputs& in,
                                               SimCluster& cluster) {
  ESRP_CHECK(in.a && in.p_action && in.part && in.stars);
  ESRP_CHECK(in.p_cur && in.p_next);
  ESRP_CHECK(in.p_next->tag() == in.p_cur->tag() + 1);
  ESRP_CHECK(in.stars->num_vectors() == kPipelinedVectors);
  const StateSnapshot& stars = *in.stars;

  // Steps 1-5: the Alg. 2 core. The pipelined p-update inverts to the
  // preconditioned residual u (classic CG's z role), so reconstruct_state's
  // z_f IS u_f; its p_prev_f is the search direction at the rollback tag.
  ReconstructionInputs core;
  core.a = in.a;
  core.p_action = in.p_action;
  core.formulation = in.formulation;
  core.p_matrix = in.p_matrix;
  core.z_star = &stars.vec(kPipeU);
  core.part = in.part;
  core.failed = in.failed;
  core.p_prev = in.p_cur;
  core.p_cur = in.p_next;
  core.beta_prev = in.beta;
  core.x_star = &stars.vec(kPipeX);
  core.r_star = &stars.vec(kPipeR);
  core.b_global = in.b_global;
  core.inner_rtol = in.inner_rtol;
  core.inner_max_iterations = in.inner_max_iterations;
  core.inner_block_size = in.inner_block_size;
  const ReconstructionOutput base = reconstruct_state(core, cluster);

  PipelinedEsrOutput out;
  out.lost = base.lost;
  if (!base.ok) return out; // redundancy destroyed (more than phi failures)
  out.x_f = base.x_f;
  out.r_f = base.r_f;
  out.u_f = base.z_f;
  out.p_f = base.p_prev_f;
  out.inner_iterations_precond = base.inner_iterations_precond;
  out.inner_iterations_matrix = base.inner_iterations_matrix;

  // Step 6: the four derived recurrence vectors, each one row-product over
  // the repaired full vector (reconstructed I_f entries + survivors' star
  // entries). Order matters: q needs s, z needs q.
  double flops = 0;
  out.s_f = reconstruct_row_product(*in.a, out.lost, *in.part, out.p_f,
                                    stars.vec(kPipeP), cluster, flops);
  out.w_f = reconstruct_row_product(*in.a, out.lost, *in.part, out.u_f,
                                    stars.vec(kPipeU), cluster, flops);
  out.q_f = reconstruct_row_product(*in.p_action, out.lost, *in.part, out.s_f,
                                    stars.vec(kPipeS), cluster, flops);
  out.z_f = reconstruct_row_product(*in.a, out.lost, *in.part, out.q_f,
                                    stars.vec(kPipeQ), cluster, flops);

  // Spread the derived-product compute over the replacement nodes, like
  // reconstruct_state does for the Alg. 2 core.
  const auto num_failed = static_cast<double>(in.failed.size());
  for (rank_t repl : in.failed) cluster.add_compute(repl, flops / num_failed);

  out.ok = true;
  return out;
}

} // namespace esrp
