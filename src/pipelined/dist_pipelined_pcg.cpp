#include "pipelined/dist_pipelined_pcg.hpp"

#include <array>
#include <cmath>

#include "comm/aspmv_plan.hpp"
#include "comm/exchange.hpp"
#include "comm/spmv_plan.hpp"
#include "common/error.hpp"
#include "common/fused.hpp"
#include "parallel/parallel.hpp"
#include "pipelined/pipelined_esr.hpp"

namespace esrp {

namespace {

/// Engine configuration of the pipelined solver: the eight recurrence
/// vectors + {gamma_prev, alpha_prev} with the leading copy pairing of
/// reference [16] (snapshot t consumes copies p'^(t), p'^(t+1)); one extra
/// snapshot scalar carries beta^(t), which only exists mid-iteration t.
ResilienceEngine::Config pipelined_engine_config() {
  ResilienceEngine::Config cfg;
  // Two star-snapshot slots: with T = 1 iteration j declares snapshot j-1
  // recoverable while snapshot j is already being captured.
  cfg.snapshot_slots = 2;
  cfg.snapshot_extra_scalars = 1;
  cfg.pairing = ResilienceEngine::CopyPairing::leading;
  cfg.checkpoint_vectors = kPipelinedVectors;
  cfg.checkpoint_scalars = 2;
  return cfg;
}

} // namespace

DistPipelinedPcg::DistPipelinedPcg(const CsrMatrix& a,
                                   const Preconditioner& precond,
                                   SimCluster& cluster,
                                   DistPipelinedOptions opts,
                                   const SpmvPlan* shared_plan,
                                   const AspmvPlan* shared_aug)
    : a_(&a),
      precond_(&precond),
      cluster_(&cluster),
      opts_(opts),
      shared_plan_(shared_plan),
      shared_aug_(shared_aug),
      resilience_(opts, cluster.partition(), pipelined_engine_config()) {
  ESRP_CHECK(a.rows() == a.cols());
  ESRP_CHECK(a.rows() == cluster.partition().global_size());
  if (shared_plan_ != nullptr)
    ESRP_CHECK_MSG(&shared_plan_->partition() == &cluster.partition(),
                   "shared SpmvPlan was built on a different partition than "
                   "the cluster's");
  if (shared_aug_ != nullptr)
    ESRP_CHECK_MSG(shared_plan_ != nullptr &&
                       &shared_aug_->base() == shared_plan_ &&
                       shared_aug_->phi() == opts_.phi,
                   "shared AspmvPlan does not match the SpMV plan / phi of "
                   "this solve");
  ESRP_CHECK(precond.dim() == a.rows());
  ESRP_CHECK_MSG(precond.action_matrix() != nullptr,
                 "distributed pipelined PCG requires an explicit "
                 "preconditioner action");
  if (opts_.strategy == Strategy::esrp &&
      opts_.precond_formulation == PrecondFormulation::matrix) {
    ESRP_CHECK_MSG(precond.matrix_form() != nullptr,
                   "the matrix formulation requires "
                   "Preconditioner::matrix_form()");
  }
  ESRP_CHECK_MSG(opts_.spare_nodes,
                 "no-spare recovery is not implemented for the pipelined "
                 "recurrences (repartitioning the overlapped plans is future "
                 "work); keep spare_nodes = true");
  ESRP_CHECK_MSG(opts_.residual_replacement == 0,
                 "residual replacement is not implemented for the pipelined "
                 "solver");
  ESRP_CHECK(opts_.rtol > 0 && opts_.inner_rtol > 0);
}

DistPipelinedResult DistPipelinedPcg::solve(std::span<const real_t> b) {
  const BlockRowPartition& part = cluster_->partition();
  const index_t n = a_->rows();
  ESRP_CHECK(static_cast<index_t>(b.size()) == n);
  const double model_t0 = cluster_->modeled_time();

  // Borrow the prepared plans when a handle injected them; otherwise build
  // per call as always (same inputs, bitwise-identical plans).
  std::optional<SpmvPlan> local_plan;
  if (shared_plan_ == nullptr) local_plan.emplace(*a_, part);
  const SpmvPlan& plan = shared_plan_ ? *shared_plan_ : *local_plan;
  ExchangeEngine engine(*a_, plan, *cluster_);
  // The augmentation plan only routes the ESRP storage stages' redundant
  // p copies: the regular iteration SpMV (input m) stays unaugmented.
  std::optional<AspmvPlan> local_aug;
  if (opts_.strategy == Strategy::esrp && shared_aug_ == nullptr)
    local_aug.emplace(plan, opts_.phi);
  const AspmvPlan* aug =
      shared_aug_ ? shared_aug_ : (local_aug ? &*local_aug : nullptr);

  // Node-local preconditioner blocks (same requirement as ResilientPcg).
  std::vector<CsrMatrix> p_local;
  p_local.reserve(static_cast<std::size_t>(part.num_nodes()));
  for (rank_t s = 0; s < part.num_nodes(); ++s) {
    const IndexSet range = index_range(part.begin(s), part.end(s));
    p_local.push_back(precond_->action_matrix()->extract(range, range));
  }
  // Per-node loops follow ResilientPcg's idiom: elementwise work is
  // parallel_for over ranks (disjoint slices), reductions are
  // parallel_reduce with a fixed grain of one rank per chunk combined in
  // rank order — bitwise identical to the serial rank loop at every thread
  // count (docs/parallelism.md).
  const auto nodes = static_cast<index_t>(part.num_nodes());
  const index_t rank_grain = adaptive_grain(nodes);
  auto apply_precond = [&](const DistVector& in, DistVector& out) {
    parallel_for(index_t{0}, nodes, rank_grain, [&](index_t lo, index_t hi) {
      for (index_t i = lo; i < hi; ++i) {
        const auto s = static_cast<rank_t>(i);
        const CsrMatrix& ps = p_local[static_cast<std::size_t>(s)];
        ps.spmv(in.local(s), out.local(s));
        cluster_->add_compute(s, static_cast<double>(ps.spmv_flops()));
      }
    });
  };
  auto local_dot = [&](const DistVector& u, const DistVector& v) {
    return parallel_reduce(index_t{0}, nodes, index_t{1}, real_t{0},
                           [&](index_t lo, index_t hi) {
                             real_t acc = 0;
                             for (index_t i = lo; i < hi; ++i) {
                               const auto s = static_cast<rank_t>(i);
                               acc += vec_dot(u.local(s), v.local(s));
                               cluster_->add_compute(
                                   s, 2.0 * static_cast<double>(
                                                part.local_size(s)));
                             }
                             return acc;
                           });
  };
  // The gamma/delta/||r||^2 triple: one sweep over every rank's slices (was
  // three), feeding the single merged allreduce the formulation is built
  // around. Componentwise accumulation in rank order keeps each component
  // bitwise equal to its separate local_dot.
  using Triple = std::array<real_t, 3>;
  auto local_dot3 = [&](const DistVector& r, const DistVector& u,
                        const DistVector& w) {
    return parallel_reduce(
        index_t{0}, nodes, index_t{1}, Triple{0, 0, 0},
        [&](index_t lo, index_t hi) {
          Triple acc{0, 0, 0};
          for (index_t i = lo; i < hi; ++i) {
            const auto s = static_cast<rank_t>(i);
            const auto [g, d, n2] =
                vec_dot3(r.local(s), u.local(s), w.local(s), u.local(s),
                         r.local(s), r.local(s));
            acc[0] += g;
            acc[1] += d;
            acc[2] += n2;
            cluster_->add_compute(
                s, 6.0 * static_cast<double>(part.local_size(s)));
          }
          return acc;
        },
        [](Triple a, Triple b) {
          return Triple{a[0] + b[0], a[1] + b[1], a[2] + b[2]};
        });
  };
  // The full recurrence tail — the z/q/s/p xpby quartet plus the x/r/u/w
  // axpy quartet — in one sweep per rank (was eight).
  auto local_update = [&](DistVector& z, const DistVector& nv, DistVector& q,
                          const DistVector& m, DistVector& s_, DistVector& w,
                          DistVector& p, DistVector& u, DistVector& x,
                          DistVector& r, real_t alpha, real_t beta) {
    parallel_for(index_t{0}, nodes, rank_grain, [&](index_t lo, index_t hi) {
      for (index_t i = lo; i < hi; ++i) {
        const auto s = static_cast<rank_t>(i);
        fused_pipelined_update(z.local(s), nv.local(s), q.local(s),
                               m.local(s), s_.local(s), w.local(s),
                               p.local(s), u.local(s), x.local(s),
                               r.local(s), alpha, beta);
        cluster_->add_compute(
            s, 16.0 * static_cast<double>(part.local_size(s)));
      }
    });
  };

  DistPipelinedResult result;
  DistVector x(part), r(part), u(part), w(part), m(part), nv(part);
  DistVector z(part), q(part), s(part), p(part);
  real_t gamma_prev = 0, alpha_prev = 0;

  // The SolverState contract with the resilience engine: the eight
  // recurrence vectors in PipelinedVec order, the m/nv scratch, and the two
  // carried scalars.
  auto state = [&] {
    return SolverState{{&x, &r, &u, &w, &z, &q, &s, &p},
                       {&m, &nv},
                       {&gamma_prev, &alpha_prev}};
  };

  DistVector b_dist(part, b);
  const real_t bnorm = std::sqrt(local_dot(b_dist, b_dist));
  cluster_->allreduce(1, CommCategory::allreduce);
  ESRP_CHECK_MSG(bnorm > 0, "right-hand side must be non-zero");

  auto initialize = [&] {
    x.zero_all();
    r.set_from_global(b); // zero initial guess
    apply_precond(r, u);
    engine.spmv(u, w);
    z.zero_all();
    q.zero_all();
    s.zero_all();
    p.zero_all();
    gamma_prev = alpha_prev = 0;
  };
  initialize();
  resilience_.begin_solve(*cluster_);

  // Recovery-ladder hooks: this solver supplies reconstruct and restart
  // only. It leaves `repartition` and `rejoin` unset, so the engine skips
  // the shrink and rejoin rungs (validate_spec rejects shrink policies for
  // "dist-pipelined" via SolverEntry::supports_shrink); all other rungs —
  // reconstruct, older-snapshot (real here: pipelined storage keeps two
  // snapshot slots), IMCR checkpoint, scratch — apply unchanged.
  ResilienceEngine::Client client;
  client.state = state;
  client.restart = initialize;
  client.reconstruct = [&](StateSnapshot& stars, const RedundantCopy& prev,
                           const RedundantCopy& cur,
                           std::span<const rank_t> failed,
                           RecoveryRecord& record) {
    PipelinedEsrInputs in;
    in.a = a_;
    in.p_action = precond_->action_matrix();
    in.formulation = opts_.precond_formulation;
    in.p_matrix = precond_->matrix_form();
    in.part = &part;
    in.failed = failed;
    in.p_cur = &prev; // leading pairing: `prev` is the rollback tag t
    in.p_next = &cur; // and `cur` is p'^(t+1)
    in.beta = stars.scalar(2);
    in.stars = &stars;
    in.b_global = b;
    in.inner_rtol = opts_.inner_rtol;
    in.inner_max_iterations = opts_.inner_max_iterations;
    in.inner_block_size = opts_.inner_block_size;
    const PipelinedEsrOutput out = reconstruct_pipelined_state(in, *cluster_);
    if (!out.ok) return false;

    // Survivors roll back to the stars; replacements receive the
    // reconstructed entries; the repaired state becomes the new snapshot.
    const SolverState st = state();
    stars.restore_vectors(st);
    const std::array<const Vector*, kPipelinedVectors> fixed = {
        &out.x_f, &out.r_f, &out.u_f, &out.w_f,
        &out.z_f, &out.q_f, &out.s_f, &out.p_f};
    for (std::size_t k = 0; k < kPipelinedVectors; ++k) {
      write_lost_entries(*st.vectors[k], out.lost, *fixed[k]);
      stars.vec(k).copy_from(*st.vectors[k]);
    }
    gamma_prev = stars.scalar(0);
    alpha_prev = stars.scalar(1);
    record.inner_iterations_precond = out.inner_iterations_precond;
    record.inner_iterations_matrix = out.inner_iterations_matrix;
    return true;
  };

  index_t j = 0;
  index_t executed = 0;

  while (executed < opts_.max_iterations) {
    if (resilience_.checkpoint_due(j))
      resilience_.store_checkpoint(j, state());

    // ESRP storage stage (ref. [16]): disseminate the redundant copies of
    // p and capture the star snapshot at the *first* storage iteration —
    // the leading pairing makes it recoverable once the second iteration's
    // copy is in place.
    const ResilienceEngine::StoragePlan stores = resilience_.storage_plan(j);
    if (stores.store()) {
      resilience_.push_copy(engine.disseminate(*aug, p, j));
      if (stores.first_store || opts_.interval == 1)
        resilience_.save_snapshot(j, state());
      if (j >= 1 && resilience_.has_copy(j - 1) &&
          resilience_.has_snapshot(j - 1))
        resilience_.set_recoverable(j - 1);
    }

    // Local dot contributions (one fused sweep), then post the allreduce
    // and overlap it with the preconditioner application and the SpMV.
    const auto [gamma, delta, rr] = local_dot3(r, u, w);
    apply_precond(w, m);
    engine.spmv(m, nv, /*complete_step=*/false);
    cluster_->allreduce_overlapped(3, CommCategory::allreduce);

    result.final_relres = std::sqrt(rr) / bnorm;
    // Before the convergence break: observers see the converging relres,
    // matching every other solver behind the facade.
    if (progress_) progress_(j, result.final_relres);
    if (result.final_relres < opts_.rtol) {
      result.converged = true;
      break;
    }

    // Failure injection point: after the SpMV/storage phase, as in
    // ResilientPcg.
    if (const FailureEvent* event = resilience_.pending_event(j)) {
      RecoveryRecord record;
      j = resilience_.recover(*event, j, client, record);
      result.recoveries.push_back(record);
      ++executed;
      continue;
    }

    real_t alpha, beta;
    if (gamma_prev == 0) {
      beta = 0;
      ESRP_CHECK_MSG(delta > 0, "w^T u <= 0: operator not SPD");
      alpha = gamma / delta;
    } else {
      beta = gamma / gamma_prev;
      const real_t denom = delta - beta * gamma / alpha_prev;
      ESRP_CHECK_MSG(denom != 0, "pipelined PCG breakdown at iteration " << j);
      alpha = gamma / denom;
    }
    // beta^(j) completes the snapshot captured earlier this iteration: the
    // p-recurrence inversion at rollback target j needs it.
    if (opts_.strategy == Strategy::esrp)
      resilience_.set_snapshot_scalar(j, 2, beta);

    local_update(z, nv, q, m, s, w, p, u, x, r, alpha, beta);
    cluster_->complete_step();

    gamma_prev = gamma;
    alpha_prev = alpha;
    ++j;
    ++executed;
  }

  result.trajectory_iterations = j;
  result.executed_iterations = executed;
  result.modeled_time = cluster_->modeled_time() - model_t0;
  result.x = x.gather_global();
  result.r = r.gather_global();
  return result;
}

} // namespace esrp
