#include "pipelined/dist_pipelined_pcg.hpp"

#include <array>
#include <cmath>

#include "comm/aspmv_plan.hpp"
#include "comm/exchange.hpp"
#include "comm/spmv_plan.hpp"
#include "common/error.hpp"
#include "common/fused.hpp"
#include "parallel/parallel.hpp"

namespace esrp {

namespace {

/// In-memory buddy checkpoint of the full pipelined state: eight recurrence
/// vectors plus the two carried scalars.
class PipelinedCheckpoint {
public:
  PipelinedCheckpoint(const BlockRowPartition& part, int phi)
      : part_(&part), phi_(phi), vecs_{DistVector(part), DistVector(part),
                                       DistVector(part), DistVector(part),
                                       DistVector(part), DistVector(part),
                                       DistVector(part), DistVector(part)} {}

  bool has_checkpoint() const { return tag_ >= 0; }
  index_t tag() const { return tag_; }

  void store(index_t iteration, const std::array<const DistVector*, 8>& state,
             real_t gamma_prev, real_t alpha_prev, SimCluster& cluster) {
    tag_ = iteration;
    for (std::size_t k = 0; k < 8; ++k) vecs_[k].copy_from(*state[k]);
    gamma_prev_ = gamma_prev;
    alpha_prev_ = alpha_prev;
    const rank_t n_nodes = part_->num_nodes();
    for (rank_t s = 0; s < n_nodes; ++s) {
      const std::size_t bytes =
          (8 * static_cast<std::size_t>(part_->local_size(s)) + 2) *
          CostParams::bytes_per_scalar;
      for (int k = 1; k <= phi_; ++k)
        cluster.send(s, designated_destination(s, k, n_nodes), bytes,
                     CommCategory::checkpoint);
    }
    cluster.complete_step();
  }

  bool restore(std::span<const rank_t> failed,
               const std::array<DistVector*, 8>& state, real_t& gamma_prev,
               real_t& alpha_prev, SimCluster& cluster) const {
    ESRP_CHECK(has_checkpoint());
    for (rank_t s : failed) {
      bool found = false;
      for (int k = 1; k <= phi_ && !found; ++k)
        found = !rank_in(failed,
                         designated_destination(s, k, part_->num_nodes()));
      if (!found) return false;
    }
    for (std::size_t k = 0; k < 8; ++k) state[k]->copy_from(vecs_[k]);
    gamma_prev = gamma_prev_;
    alpha_prev = alpha_prev_;
    for (rank_t s : failed) {
      for (int k = 1; k <= phi_; ++k) {
        const rank_t buddy = designated_destination(s, k, part_->num_nodes());
        if (rank_in(failed, buddy)) continue;
        cluster.send(buddy, s,
                     (8 * static_cast<std::size_t>(part_->local_size(s)) + 2) *
                         CostParams::bytes_per_scalar,
                     CommCategory::recovery);
        break;
      }
    }
    cluster.complete_step();
    return true;
  }

private:
  const BlockRowPartition* part_;
  int phi_;
  index_t tag_ = -1;
  std::array<DistVector, 8> vecs_;
  real_t gamma_prev_ = 0;
  real_t alpha_prev_ = 0;
};

} // namespace

DistPipelinedPcg::DistPipelinedPcg(const CsrMatrix& a,
                                   const Preconditioner& precond,
                                   SimCluster& cluster,
                                   DistPipelinedOptions opts)
    : a_(&a), precond_(&precond), cluster_(&cluster), opts_(opts) {
  ESRP_CHECK(a.rows() == a.cols());
  ESRP_CHECK(a.rows() == cluster.partition().global_size());
  ESRP_CHECK(precond.dim() == a.rows());
  ESRP_CHECK_MSG(precond.action_matrix() != nullptr,
                 "distributed pipelined PCG requires an explicit "
                 "preconditioner action");
  ESRP_CHECK_MSG(opts_.strategy != Strategy::esrp,
                 "exact state reconstruction for pipelined PCG is the "
                 "contribution of Levonyak et al. [16] and is not "
                 "implemented; use Strategy::imcr or Strategy::none");
}

DistPipelinedResult DistPipelinedPcg::solve(std::span<const real_t> b) {
  const BlockRowPartition& part = cluster_->partition();
  const index_t n = a_->rows();
  ESRP_CHECK(static_cast<index_t>(b.size()) == n);
  const double model_t0 = cluster_->modeled_time();

  const SpmvPlan plan(*a_, part);
  ExchangeEngine engine(*a_, plan, *cluster_);

  // Node-local preconditioner blocks (same requirement as ResilientPcg).
  std::vector<CsrMatrix> p_local;
  for (rank_t s = 0; s < part.num_nodes(); ++s) {
    const IndexSet range = index_range(part.begin(s), part.end(s));
    p_local.push_back(precond_->action_matrix()->extract(range, range));
  }
  // Per-node loops follow ResilientPcg's idiom: elementwise work is
  // parallel_for over ranks (disjoint slices), reductions are
  // parallel_reduce with a fixed grain of one rank per chunk combined in
  // rank order — bitwise identical to the serial rank loop at every thread
  // count (docs/parallelism.md).
  const auto nodes = static_cast<index_t>(part.num_nodes());
  const index_t rank_grain = adaptive_grain(nodes);
  auto apply_precond = [&](const DistVector& in, DistVector& out) {
    parallel_for(index_t{0}, nodes, rank_grain, [&](index_t lo, index_t hi) {
      for (index_t i = lo; i < hi; ++i) {
        const auto s = static_cast<rank_t>(i);
        const CsrMatrix& ps = p_local[static_cast<std::size_t>(s)];
        ps.spmv(in.local(s), out.local(s));
        cluster_->add_compute(s, static_cast<double>(ps.spmv_flops()));
      }
    });
  };
  auto local_dot = [&](const DistVector& u, const DistVector& v) {
    return parallel_reduce(index_t{0}, nodes, index_t{1}, real_t{0},
                           [&](index_t lo, index_t hi) {
                             real_t acc = 0;
                             for (index_t i = lo; i < hi; ++i) {
                               const auto s = static_cast<rank_t>(i);
                               acc += vec_dot(u.local(s), v.local(s));
                               cluster_->add_compute(
                                   s, 2.0 * static_cast<double>(
                                                part.local_size(s)));
                             }
                             return acc;
                           });
  };
  // The gamma/delta/||r||^2 triple: one sweep over every rank's slices (was
  // three), feeding the single merged allreduce the formulation is built
  // around. Componentwise accumulation in rank order keeps each component
  // bitwise equal to its separate local_dot.
  using Triple = std::array<real_t, 3>;
  auto local_dot3 = [&](const DistVector& r, const DistVector& u,
                        const DistVector& w) {
    return parallel_reduce(
        index_t{0}, nodes, index_t{1}, Triple{0, 0, 0},
        [&](index_t lo, index_t hi) {
          Triple acc{0, 0, 0};
          for (index_t i = lo; i < hi; ++i) {
            const auto s = static_cast<rank_t>(i);
            const auto [g, d, n2] =
                vec_dot3(r.local(s), u.local(s), w.local(s), u.local(s),
                         r.local(s), r.local(s));
            acc[0] += g;
            acc[1] += d;
            acc[2] += n2;
            cluster_->add_compute(
                s, 6.0 * static_cast<double>(part.local_size(s)));
          }
          return acc;
        },
        [](Triple a, Triple b) {
          return Triple{a[0] + b[0], a[1] + b[1], a[2] + b[2]};
        });
  };
  // The full recurrence tail — the z/q/s/p xpby quartet plus the x/r/u/w
  // axpy quartet — in one sweep per rank (was eight).
  auto local_update = [&](DistVector& z, const DistVector& nv, DistVector& q,
                          const DistVector& m, DistVector& s_, DistVector& w,
                          DistVector& p, DistVector& u, DistVector& x,
                          DistVector& r, real_t alpha, real_t beta) {
    parallel_for(index_t{0}, nodes, rank_grain, [&](index_t lo, index_t hi) {
      for (index_t i = lo; i < hi; ++i) {
        const auto s = static_cast<rank_t>(i);
        fused_pipelined_update(z.local(s), nv.local(s), q.local(s),
                               m.local(s), s_.local(s), w.local(s),
                               p.local(s), u.local(s), x.local(s),
                               r.local(s), alpha, beta);
        cluster_->add_compute(
            s, 16.0 * static_cast<double>(part.local_size(s)));
      }
    });
  };

  DistPipelinedResult result;
  DistVector x(part), r(part), u(part), w(part), m(part), nv(part);
  DistVector z(part), q(part), s(part), p(part);
  real_t gamma_prev = 0, alpha_prev = 0;

  DistVector b_dist(part, b);
  const real_t bnorm = std::sqrt(local_dot(b_dist, b_dist));
  cluster_->allreduce(1, CommCategory::allreduce);
  ESRP_CHECK_MSG(bnorm > 0, "right-hand side must be non-zero");

  auto initialize = [&] {
    x.zero_all();
    r.set_from_global(b); // zero initial guess
    apply_precond(r, u);
    engine.spmv(u, w);
    z.zero_all();
    q.zero_all();
    s.zero_all();
    p.zero_all();
    gamma_prev = alpha_prev = 0;
  };
  initialize();

  std::unique_ptr<PipelinedCheckpoint> checkpoint;
  if (opts_.strategy == Strategy::imcr)
    checkpoint = std::make_unique<PipelinedCheckpoint>(part, opts_.phi);

  index_t j = 0;
  index_t executed = 0;
  bool injected = false;

  while (executed < opts_.max_iterations) {
    if (opts_.strategy == Strategy::imcr && j > 0 &&
        j % opts_.interval == 0 && checkpoint->tag() != j) {
      checkpoint->store(j, {&x, &r, &u, &w, &z, &q, &s, &p}, gamma_prev,
                        alpha_prev, *cluster_);
    }

    // Local dot contributions (one fused sweep), then post the allreduce
    // and overlap it with the preconditioner application and the SpMV.
    const auto [gamma, delta, rr] = local_dot3(r, u, w);
    apply_precond(w, m);
    engine.spmv(m, nv, /*complete_step=*/false);
    cluster_->allreduce_overlapped(3, CommCategory::allreduce);

    result.final_relres = std::sqrt(rr) / bnorm;
    // Before the convergence break: observers see the converging relres,
    // matching every other solver behind the facade.
    if (progress_) progress_(j, result.final_relres);
    if (result.final_relres < opts_.rtol) {
      result.converged = true;
      break;
    }

    // Failure injection point: after the SpMV phase, as in ResilientPcg.
    if (!injected && opts_.failure.enabled() &&
        j == opts_.failure.iteration) {
      injected = true;
      if (on_failure_) on_failure_(opts_.failure);
      RecoveryRecord record;
      record.failed_at = j;
      const std::span<const rank_t> failed = opts_.failure.ranks;
      for (DistVector* v :
           {&x, &r, &u, &w, &m, &nv, &z, &q, &s, &p})
        v->zero_ranks(failed);
      const double t0 = cluster_->modeled_time();
      bool recovered = false;
      if (checkpoint && checkpoint->has_checkpoint()) {
        recovered = checkpoint->restore(failed, {&x, &r, &u, &w, &z, &q, &s,
                                                 &p},
                                        gamma_prev, alpha_prev, *cluster_);
        if (recovered) j = checkpoint->tag();
      }
      if (!recovered) {
        initialize();
        j = 0;
        record.restarted_from_scratch = true;
      }
      record.restored_to = j;
      record.wasted_iterations = record.failed_at - j;
      record.modeled_time = cluster_->modeled_time() - t0;
      if (on_recovery_) on_recovery_(record);
      result.recoveries.push_back(record);
      ++executed;
      continue;
    }

    real_t alpha, beta;
    if (gamma_prev == 0) {
      beta = 0;
      ESRP_CHECK_MSG(delta > 0, "w^T u <= 0: operator not SPD");
      alpha = gamma / delta;
    } else {
      beta = gamma / gamma_prev;
      const real_t denom = delta - beta * gamma / alpha_prev;
      ESRP_CHECK_MSG(denom != 0, "pipelined PCG breakdown at iteration " << j);
      alpha = gamma / denom;
    }

    local_update(z, nv, q, m, s, w, p, u, x, r, alpha, beta);
    cluster_->complete_step();

    gamma_prev = gamma;
    alpha_prev = alpha;
    ++j;
    ++executed;
  }

  result.trajectory_iterations = j;
  result.executed_iterations = executed;
  result.modeled_time = cluster_->modeled_time() - model_t0;
  result.x = x.gather_global();
  result.r = r.gather_global();
  return result;
}

} // namespace esrp
