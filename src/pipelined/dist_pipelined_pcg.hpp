// Distributed pipelined PCG on the simulated cluster.
//
// The point of the pipelined variant is *communication hiding*: the single
// per-iteration allreduce (3 scalars: gamma, delta, ||r||^2) is posted
// before the preconditioner application and SpMV and completes while they
// compute (modeled via SimCluster::allreduce_overlapped). At high latency or
// large node counts this removes the reduction from the critical path that
// dominates classic PCG.
//
// Resilience: IMCR checkpointing extends naturally (checkpoint all eight
// recurrence vectors). Exact state reconstruction for the pipelined
// recurrences is the contribution of the paper's reference [16] and is out
// of scope here; a failure without a checkpoint restarts from scratch.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "core/resilient_pcg.hpp" // Strategy, FailureEvent, RecoveryRecord
#include "netsim/cluster.hpp"
#include "netsim/dist_vector.hpp"
#include "precond/preconditioner.hpp"
#include "sparse/csr.hpp"

namespace esrp {

struct DistPipelinedOptions {
  real_t rtol = 1e-8;
  index_t max_iterations = 200000;
  /// Strategy::none or Strategy::imcr (ESRP requires the reconstruction of
  /// [16] and is rejected).
  Strategy strategy = Strategy::none;
  index_t interval = 20; ///< IMCR checkpoint interval
  int phi = 1;
  FailureEvent failure;
};

struct DistPipelinedResult {
  bool converged = false;
  index_t trajectory_iterations = 0;
  index_t executed_iterations = 0;
  real_t final_relres = 0;
  double modeled_time = 0;
  std::vector<RecoveryRecord> recoveries;
  Vector x;
  Vector r;
};

class DistPipelinedPcg {
public:
  DistPipelinedPcg(const CsrMatrix& a, const Preconditioner& precond,
                   SimCluster& cluster, DistPipelinedOptions opts);

  DistPipelinedResult solve(std::span<const real_t> b);

  /// Same observer surface as ResilientPcg (see core/resilient_pcg.hpp):
  /// per-iteration progress, failure, and recovery callbacks.
  void set_progress_callback(std::function<void(index_t, real_t)> cb) {
    progress_ = std::move(cb);
  }
  void set_failure_callback(std::function<void(const FailureEvent&)> cb) {
    on_failure_ = std::move(cb);
  }
  void set_recovery_callback(std::function<void(const RecoveryRecord&)> cb) {
    on_recovery_ = std::move(cb);
  }

private:
  const CsrMatrix* a_;
  const Preconditioner* precond_;
  SimCluster* cluster_;
  DistPipelinedOptions opts_;
  std::function<void(index_t, real_t)> progress_;
  std::function<void(const FailureEvent&)> on_failure_;
  std::function<void(const RecoveryRecord&)> on_recovery_;
};

} // namespace esrp
