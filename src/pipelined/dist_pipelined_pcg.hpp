// Distributed pipelined PCG on the simulated cluster.
//
// The point of the pipelined variant is *communication hiding*: the single
// per-iteration allreduce (3 scalars: gamma, delta, ||r||^2) is posted
// before the preconditioner application and SpMV and completes while they
// compute (modeled via SimCluster::allreduce_overlapped). At high latency or
// large node counts this removes the reduction from the critical path that
// dominates classic PCG.
//
// Resilience rides on the same solver-agnostic ResilienceEngine as the
// classic solver (resilience/engine.hpp) and the shared ResilienceOptions
// surface, including multi-event failure schedules:
//   imcr — buddy checkpoints of the eight recurrence vectors plus the two
//          carried scalars, every T iterations;
//   esrp — exact state reconstruction for the pipelined recurrences, per
//          the paper's reference [16] (Levonyak et al.): the storage stage
//          disseminates redundant copies of the search direction p (the
//          iteration's SpMV input is m = P w, so the copies cannot ride the
//          ASpMV as in classic ESR) and saves the star snapshot at the
//          first storage iteration; recovery inverts the p-recurrence into
//          u, runs the standard Alg. 2 inner solves for r and x, and
//          derives w, s, q, z by row products (pipelined/pipelined_esr.hpp).
// Not supported here: no-spare recovery (repartitioning the pipelined
// plans is future work — ResilienceOptions::spare_nodes must stay true),
// residual replacement, and initial guesses.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "core/resilient_pcg.hpp" // RecoveryRecord, shared result plumbing
#include "netsim/cluster.hpp"
#include "netsim/dist_vector.hpp"
#include "precond/preconditioner.hpp"
#include "resilience/engine.hpp"
#include "resilience/options.hpp"
#include "sparse/csr.hpp"

namespace esrp {

/// The shared resilience surface (strategy, interval, phi, queue capacity,
/// failure schedule incl. extra_failures, inner-solve parameters, rtol,
/// max_iterations) with the pipelined solver's historical default interval.
struct DistPipelinedOptions : ResilienceOptions {
  DistPipelinedOptions() { interval = 20; }
};

struct DistPipelinedResult {
  bool converged = false;
  index_t trajectory_iterations = 0;
  index_t executed_iterations = 0;
  real_t final_relres = 0;
  double modeled_time = 0;
  std::vector<RecoveryRecord> recoveries;
  Vector x;
  Vector r;
};

class DistPipelinedPcg {
public:
  /// `shared_plan` / `shared_aug` (optional, service layer) inject plans a
  /// prepared ProblemHandle built for this (matrix, partition, phi); the
  /// solver then borrows them in every solve() instead of rebuilding per
  /// call. They must outlive the solver, be built on `cluster.partition()`,
  /// and match `opts.phi` (aug). Plans are deterministic functions of those
  /// inputs, so borrowed and per-call-built plans solve bitwise identically.
  DistPipelinedPcg(const CsrMatrix& a, const Preconditioner& precond,
                   SimCluster& cluster, DistPipelinedOptions opts,
                   const SpmvPlan* shared_plan = nullptr,
                   const AspmvPlan* shared_aug = nullptr);

  DistPipelinedResult solve(std::span<const real_t> b);

  /// Same observer surface as ResilientPcg (see core/resilient_pcg.hpp):
  /// per-iteration progress, failure, and recovery callbacks.
  void set_progress_callback(std::function<void(index_t, real_t)> cb) {
    progress_ = std::move(cb);
  }
  void set_failure_callback(std::function<void(const FailureEvent&)> cb) {
    resilience_.set_failure_callback(std::move(cb));
  }
  void set_recovery_callback(std::function<void(const RecoveryRecord&)> cb) {
    resilience_.set_recovery_callback(std::move(cb));
  }

  const ResilienceOptions& options() const { return opts_; }
  /// Introspection for tests, mirroring ResilientPcg.
  std::vector<index_t> queue_tags() const { return resilience_.queue_tags(); }
  index_t last_recoverable() const { return resilience_.last_recoverable(); }

private:
  const CsrMatrix* a_;
  const Preconditioner* precond_;
  SimCluster* cluster_;
  DistPipelinedOptions opts_;
  const SpmvPlan* shared_plan_ = nullptr;  ///< borrowed; may be null
  const AspmvPlan* shared_aug_ = nullptr;  ///< borrowed; may be null
  ResilienceEngine resilience_;
  std::function<void(index_t, real_t)> progress_;
};

} // namespace esrp
