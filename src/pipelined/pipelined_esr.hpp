// Exact state reconstruction for the pipelined PCG recurrences — the
// contribution of the paper's reference [16] (Levonyak et al., scalable
// resilience for communication-hiding PCG), composed from the standard
// Alg. 2 machinery of core/reconstruction.hpp.
//
// The pipelined iteration carries eight recurrence vectors
// (x, r, u, w, z, q, s, p). In exact arithmetic they satisfy
//
//   r = b - A x,  u = P r,  w = A u,  s = A p,  q = P s,  z = A q,
//
// so the whole state at the rollback target t is determined by x and p —
// everything else follows by row products and the two Alg. 2 inner solves.
// Unlike classic CG, the iteration's SpMV input is m = P w, not p, so the
// storage stage disseminates dedicated redundant copies of p
// (ExchangeEngine::disseminate), and the p-update
//
//   p^(t+1) = u^(t) + beta^(t) p^(t)
//
// involves the *previous* u: inverting it with copies p'^(t), p'^(t+1)
// yields u at the OLDER tag t (the engine's leading copy pairing), whereas
// classic CG's update yields z at the newer tag. The recovery therefore
// rolls back to the first storage iteration t and proceeds:
//
//   1. retrieve beta^(t), gamma^(t-1), alpha^(t-1) from a survivor
//   2. u_f = p'^(t+1)_f - beta^(t) p'^(t)_f        (recurrence inversion)
//   3. solve P_{I_f,I_f} r_f = u_f - P_{I_f,I\I_f} r*_{I\I_f}   (Alg. 2)
//   4. solve A_{I_f,I_f} x_f = b_f - r_f - A_{I_f,I\I_f} x*_{I\I_f}
//   5. p_f = p'^(t)_f                              (the copy itself)
//   6. s_f = A_{I_f,.} [p_f | p*],  w_f = A_{I_f,.} [u_f | u*],
//      q_f = P_{I_f,.} [s_f | s*],  z_f = A_{I_f,.} [q_f | q*]
//
// (steps 3-4 are reconstruct_state; step 6 is reconstruct_row_product; the
// matrix formulation of [20] replaces step 3 exactly as in classic ESR).
// Everything is charged to the SimCluster under CommCategory::recovery,
// matching the paper's measurement protocol.
#pragma once

#include <span>

#include "comm/exchange.hpp"
#include "core/reconstruction.hpp"
#include "netsim/cluster.hpp"
#include "partition/index_set.hpp"
#include "resilience/solver_state.hpp"
#include "sparse/csr.hpp"

namespace esrp {

/// Fixed order of the eight recurrence vectors in the pipelined solver's
/// SolverState, its checkpoints, and its star snapshots.
enum PipelinedVec : std::size_t {
  kPipeX = 0,
  kPipeR = 1,
  kPipeU = 2,
  kPipeW = 3,
  kPipeZ = 4,
  kPipeQ = 5,
  kPipeS = 6,
  kPipeP = 7,
};
inline constexpr std::size_t kPipelinedVectors = 8;

struct PipelinedEsrInputs {
  const CsrMatrix* a = nullptr;         ///< system matrix (static data)
  const CsrMatrix* p_action = nullptr;  ///< explicit preconditioner action
  PrecondFormulation formulation = PrecondFormulation::inverse;
  const CsrMatrix* p_matrix = nullptr;  ///< M, required for ::matrix
  const BlockRowPartition* part = nullptr;
  std::span<const rank_t> failed;       ///< failed = replacement ranks
  const RedundantCopy* p_cur = nullptr;  ///< p'^(t), the state restored
  const RedundantCopy* p_next = nullptr; ///< p'^(t+1)
  real_t beta = 0;                       ///< beta^(t), stored at the stage
  /// Star snapshot at iteration t: the eight vectors in PipelinedVec order
  /// (failed ranks' slices may be zeroed; only surviving slices are read).
  const StateSnapshot* stars = nullptr;
  std::span<const real_t> b_global;      ///< right-hand side (static data)
  real_t inner_rtol = 1e-14;
  index_t inner_max_iterations = 0;      ///< 0 = PCG default
  index_t inner_block_size = 10;         ///< block Jacobi size, inner solves
};

struct PipelinedEsrOutput {
  bool ok = false;           ///< false: a redundant copy did not survive
  IndexSet lost;             ///< I_f (sorted)
  /// Reconstructed entries, compact over I_f.
  Vector x_f, r_f, u_f, w_f, z_f, q_f, s_f, p_f;
  index_t inner_iterations_precond = 0;
  index_t inner_iterations_matrix = 0;
};

PipelinedEsrOutput reconstruct_pipelined_state(const PipelinedEsrInputs& in,
                                               SimCluster& cluster);

} // namespace esrp
