#include "pipelined/pipelined_pcg.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/fused.hpp"

namespace esrp {

PipelinedPcgResult pipelined_pcg_solve(const CsrMatrix& a,
                                       std::span<const real_t> b,
                                       std::span<real_t> x,
                                       const Preconditioner* precond,
                                       const PipelinedPcgOptions& opts,
                                       const IterationCallback& on_iteration) {
  const index_t n = a.rows();
  ESRP_CHECK(a.rows() == a.cols());
  ESRP_CHECK(static_cast<index_t>(b.size()) == n);
  ESRP_CHECK(static_cast<index_t>(x.size()) == n);

  PipelinedPcgResult result;
  const index_t max_iter =
      opts.max_iterations > 0 ? opts.max_iterations : 10 * std::max<index_t>(n, 1);
  const real_t bnorm = vec_norm2(b);
  if (bnorm == real_t{0}) {
    vec_zero(x);
    result.converged = true;
    return result;
  }

  const auto nn = static_cast<std::size_t>(n);
  Vector r(nn), u(nn), w(nn), m(nn), nv(nn);
  Vector z(nn, 0), q(nn, 0), s(nn, 0), p(nn, 0);

  auto apply_precond = [&](std::span<const real_t> in, std::span<real_t> out) {
    if (precond) {
      precond->apply(in, out);
      result.flops += precond->apply_flops();
    } else {
      vec_copy(in, out);
    }
  };

  // r = b - A x; u = P r; w = A u.
  a.spmv(x, r);
  vec_sub(b, r, r);
  apply_precond(r, u);
  a.spmv(u, w);
  result.flops += 2.0 * static_cast<double>(a.spmv_flops());

  real_t gamma_prev = 0, alpha_prev = 0;
  for (index_t j = 0; j < max_iter; ++j) {
    // The gamma/delta/||r||^2 triple from one sweep — this is the on-node
    // mirror of the formulation's single merged allreduce.
    const auto [gamma, delta, rr] = vec_dot3(r, u, w, u, r, r);
    result.flops += 6.0 * static_cast<double>(n);

    result.final_relres = std::sqrt(rr) / bnorm;
    if (on_iteration) on_iteration(j, result.final_relres);
    if (result.final_relres < opts.rtol) {
      result.converged = true;
      result.iterations = j;
      return result;
    }

    apply_precond(w, m);
    a.spmv(m, nv);
    result.flops += static_cast<double>(a.spmv_flops());

    real_t alpha, beta;
    if (j == 0) {
      beta = 0;
      ESRP_CHECK_MSG(delta > 0, "w^T u <= 0: matrix or preconditioner not SPD");
      alpha = gamma / delta;
    } else {
      beta = gamma / gamma_prev;
      const real_t denom = delta - beta * gamma / alpha_prev;
      ESRP_CHECK_MSG(denom != 0, "pipelined PCG breakdown at iteration " << j);
      alpha = gamma / denom;
    }

    // The z/q/s/p xpby quartet and x/r/u/w axpy quartet in a single sweep
    // (was 8 separate passes); flops unchanged vs. the unfused sequence.
    fused_pipelined_update(z, nv, q, m, s, w, p, u, x, r, alpha, beta);
    result.flops += 16.0 * static_cast<double>(n);

    gamma_prev = gamma;
    alpha_prev = alpha;
  }

  result.iterations = max_iter;
  // Recompute on the cap exit: the loop-top value predates the final
  // iteration's updates (pcg_solve does the same after its loop).
  result.final_relres = vec_norm2(r) / bnorm;
  return result;
}

} // namespace esrp
