// Ablation: communication hiding. Classic PCG has three reduction points on
// the critical path per iteration; pipelined PCG (the variant the paper's
// reference [16] makes resilient) has a single reduction overlapped with
// the SpMV and the preconditioner. Sweeps the network latency alpha and
// compares modeled per-iteration times on 128 nodes.
#include <cstdio>

#include "pipelined/dist_pipelined_pcg.hpp"
#include "precond/block_jacobi.hpp"
#include "sparse/generators.hpp"
#include "xp/experiment.hpp"
#include "xp/table.hpp"

int main() {
  using namespace esrp;
  // A well-conditioned operator: the pipelined recurrences amplify rounding
  // errors, and on the ill-conditioned emilia_like stand-in they need ~20x
  // more iterations than classic PCG (a known property of pipelined CG, and
  // one reason the paper's drift metric Eq. 2 matters). On Poisson both
  // variants follow essentially the same trajectory, which isolates the
  // communication-hiding effect this ablation is about.
  const TestProblem prob{"poisson3d_16", "3D Poisson 7-pt",
                         poisson3d(16, 16, 16)};
  const CsrMatrix& a = prob.matrix;
  const Vector b = xp::make_rhs(a);
  const rank_t nodes = 128;
  const BlockRowPartition part(a.rows(), nodes);
  const BlockJacobiPreconditioner precond(a, part, 10);

  std::printf("Communication-hiding ablation on %s (%d nodes)\n\n",
              prob.name.c_str(), static_cast<int>(nodes));

  xp::TablePrinter table({"latency", "classic it [ms]", "pipelined it [ms]",
                          "speedup", "classic C", "pipelined C"},
                         {10, 16, 18, 8, 10, 12});
  table.print_header();

  for (const double alpha : {2e-6, 2e-5, 2e-4, 1e-3}) {
    CostParams cost = xp::calibrated_cost(a, nodes);
    cost.alpha_s = alpha;

    SimCluster c1(part, cost);
    ResilienceOptions classic_opts;
    ResilientPcg classic(a, precond, c1, classic_opts);
    const ResilientSolveResult r1 = classic.solve(b);

    SimCluster c2(part, cost);
    DistPipelinedOptions piped_opts;
    DistPipelinedPcg piped(a, precond, c2, piped_opts);
    const DistPipelinedResult r2 = piped.solve(b);

    const double it1 = 1e3 * r1.modeled_time /
                       static_cast<double>(r1.executed_iterations);
    const double it2 = 1e3 * r2.modeled_time /
                       static_cast<double>(r2.executed_iterations);
    char lat[24];
    std::snprintf(lat, sizeof lat, "%.0e s", alpha);
    table.print_row({lat, xp::format_fixed(it1, 4), xp::format_fixed(it2, 4),
                     xp::format_fixed(it1 / it2, 2) + "x",
                     std::to_string(r1.trajectory_iterations),
                     std::to_string(r2.trajectory_iterations)});
  }
  table.print_rule();
  std::printf("\nAt low latency both variants are compute-bound and tie; as "
              "latency grows the classic solver's three reduction points "
              "dominate while the pipelined solver hides its single "
              "reduction behind the SpMV — approaching a 3x per-iteration "
              "advantage, the motivation for resilient pipelined PCG "
              "[16].\n");
  return 0;
}
