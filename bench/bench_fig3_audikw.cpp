// Reproduces Figure 3 of the paper: the Figure-2 panels for the audikw_1
// stand-in. Shares its runs with bench_table3_audikw through the result
// cache.
#include "table_grid.hpp"

int main() {
  using namespace esrp;
  bench::GridSpec spec;
  xp::ResultCache cache;
  const TestProblem prob = audikw_like_default();
  const bench::GridResult grid = bench::run_grid(prob, spec, cache);
  bench::print_figure(prob, spec, grid);
  return 0;
}
