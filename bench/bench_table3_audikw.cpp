// Reproduces Table 3 of the paper: the Table-2 grid for the audikw_1
// stand-in (denser elasticity-like operator, 3 dof per grid point).
#include "table_grid.hpp"

int main() {
  using namespace esrp;
  bench::GridSpec spec;
  xp::ResultCache cache;
  const TestProblem prob = audikw_like_default();
  const bench::GridResult grid = bench::run_grid(prob, spec, cache);
  bench::print_table(prob, spec, grid);
  return 0;
}
