// Ablation: the paper's conclusions call for "more appropriate
// preconditioners" — the block Jacobi block size is the knob our
// reconstruction supports (node-aligned explicit action). This bench sweeps
// the block size and reports global iterations, failure-free ESRP overhead,
// and the reconstruction cost, showing the trade-off the paper describes:
// a stronger preconditioner shortens both the solve and the recovery's
// inner solves.
#include <cstdio>

#include "xp/experiment.hpp"
#include "xp/table.hpp"
#include "sparse/generators.hpp"

int main() {
  using namespace esrp;

  const TestProblem prob = emilia_like(16, 16, 16);
  const CsrMatrix& a = prob.matrix;
  const Vector b = xp::make_rhs(a);
  const rank_t nodes = 32;
  const index_t interval = 20;
  const int phi = 3;

  std::printf("Preconditioner-strength ablation on %s (%lld rows, "
              "%d nodes, ESRP T = %lld, phi = psi = %d)\n\n",
              prob.name.c_str(), static_cast<long long>(a.rows()),
              static_cast<int>(nodes), static_cast<long long>(interval), phi);

  xp::TablePrinter table({"block size", "C", "t0 [s]", "ff overhead",
                          "fail overhead", "rec overhead"},
                         {10, 8, 10, 12, 14, 14});
  table.print_header();

  for (const index_t block : {1, 5, 10, 25, 64}) {
    const xp::Reference ref = xp::run_reference(a, b, nodes, 1e-8, block);

    xp::RunConfig ff;
    ff.strategy = Strategy::esrp;
    ff.interval = interval;
    ff.phi = phi;
    ff.num_nodes = nodes;
    ff.max_block_size = block;
    const xp::RunOutcome ff_out = xp::run_experiment(a, b, ff);

    xp::RunConfig fail = ff;
    fail.with_failure = true;
    fail.psi = phi;
    fail.failure_start = nodes / 2;
    fail.failure_iteration =
        xp::worst_case_failure_iteration(ref.iterations, interval);
    const xp::RunOutcome fail_out = xp::run_experiment(a, b, fail);

    table.print_row(
        {std::to_string(block), std::to_string(ref.iterations),
         xp::format_fixed(ref.t0_modeled, 3),
         xp::format_percent(
             xp::relative_overhead(ff_out.modeled_time, ref.t0_modeled)),
         xp::format_percent(
             xp::relative_overhead(fail_out.modeled_time, ref.t0_modeled)),
         xp::format_percent(fail_out.recovery_time / ref.t0_modeled)});
  }
  table.print_rule();
  std::printf("\nLarger (node-aligned) blocks act as the stronger "
              "preconditioner the paper's future work asks for: C drops "
              "steadily. The trade-off: the explicit inverse blocks get "
              "denser, so both the per-iteration apply (t0) and the "
              "P_{If,If} inner solve of the reconstruction get more "
              "expensive — the paper's block size of 10 sits near the "
              "balance point.\n");
  return 0;
}
