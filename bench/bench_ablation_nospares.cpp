// Ablation: recovery with vs. without spare nodes (paper §4 / reference
// [22]). With spares, the failed ranks are replaced and the post-recovery
// iteration speed is unchanged. Without spares, surviving neighbors absorb
// the lost ranges: no replacement hardware is needed, but the adopters
// carry up to (1 + psi) times the load for the rest of the solve — the BSP
// iteration time is set by the slowest node.
#include <cstdio>

#include "core/resilient_pcg.hpp"
#include "precond/block_jacobi.hpp"
#include "sparse/generators.hpp"
#include "xp/experiment.hpp"
#include "xp/table.hpp"

int main() {
  using namespace esrp;
  const TestProblem prob = emilia_like(16, 16, 16);
  const CsrMatrix& a = prob.matrix;
  const Vector b = xp::make_rhs(a);
  const rank_t nodes = 32;
  const BlockRowPartition part(a.rows(), nodes);
  const xp::Reference ref = xp::run_reference(a, b, nodes);

  std::printf("Spare-node ablation on %s (%d nodes, ESRP T = 20, "
              "failure at C/2)\n\n",
              prob.name.c_str(), static_cast<int>(nodes));

  xp::TablePrinter table({"psi=phi", "spares", "overall overhead",
                          "recovery [s]", "active nodes after"},
                         {8, 8, 18, 14, 20});
  table.print_header();

  for (const int phi : {1, 3, 8}) {
    for (const bool spares : {true, false}) {
      SimCluster cluster(part, xp::calibrated_cost(a, nodes));
      BlockJacobiPreconditioner precond(a, part, 10);
      ResilienceOptions opts;
      opts.strategy = Strategy::esrp;
      opts.interval = 20;
      opts.phi = phi;
      opts.spare_nodes = spares;
      opts.failure.iteration =
          xp::worst_case_failure_iteration(ref.iterations, 20);
      opts.failure.ranks = contiguous_ranks(nodes / 2,
                                            static_cast<rank_t>(phi), nodes);
      ResilientPcg solver(a, precond, cluster, opts);
      const ResilientSolveResult res = solver.solve(b);
      double recovery = 0;
      for (const auto& rec : res.recoveries) recovery += rec.modeled_time;
      table.print_row(
          {spares ? std::to_string(phi) : "", spares ? "yes" : "no",
           xp::format_percent(
               xp::relative_overhead(res.modeled_time, ref.t0_modeled)),
           xp::format_fixed(recovery, 4),
           std::to_string(solver.current_partition().active_nodes())});
    }
  }
  table.print_rule();
  std::printf("\nNo-spare recovery trades replacement hardware for a "
              "permanently imbalanced partition: the adopter becomes the "
              "BSP straggler, so the overall overhead grows with psi much "
              "faster than in the spare-node configuration.\n");
  return 0;
}
