// Reproduces Table 4 of the paper: the residual-drift accuracy metric
// (Eq. 2) for both matrices — the failure-free reference value, and the
// median and minimum drift over all failure experiments of the Table-2/3
// grids (the minimum is the greatest accuracy loss caused by an ESRP
// reconstruction). Reuses the cached grid runs.
#include <cstdio>

#include "common/stats.hpp"
#include "table_grid.hpp"
#include "xp/table.hpp"

int main() {
  using namespace esrp;
  bench::GridSpec spec;
  xp::ResultCache cache;

  std::printf("Table 4: residual drift (Eq. 2). Reference: drift of all "
              "failure-free cases (identical trajectory). Median/Minimum: "
              "over all ESRP failure experiments of the Table-2/3 grids.\n\n");

  xp::TablePrinter table({"Matrix", "Reference", "Median", "Minimum"},
                         {24, 12, 12, 12});
  table.print_header();

  for (const TestProblem& prob :
       {emilia_like_default(), audikw_like_default()}) {
    const CsrMatrix& a = prob.matrix;
    const Vector b = xp::make_rhs(a);

    // Reference drift (failure-free).
    xp::RunConfig ref_cfg;
    ref_cfg.num_nodes = spec.num_nodes;
    const xp::RunOutcome ref = cache.get_or_run(a, b, prob.name, ref_cfg);

    // Drift over every ESRP failure run in the grid.
    Vector drifts;
    const index_t c_ref = ref.iterations;
    for (const index_t interval : spec.esrp_intervals) {
      for (const int phi : spec.phis) {
        for (const rank_t loc : spec.locations) {
          xp::RunConfig cfg;
          cfg.strategy = Strategy::esrp;
          cfg.interval = interval;
          cfg.phi = phi;
          cfg.num_nodes = spec.num_nodes;
          cfg.with_failure = true;
          cfg.psi = phi;
          cfg.failure_start = loc;
          cfg.failure_iteration =
              xp::worst_case_failure_iteration(c_ref, interval);
          const xp::RunOutcome out = cache.get_or_run(a, b, prob.name, cfg);
          if (out.converged) drifts.push_back(out.drift);
        }
      }
    }

    table.print_row({prob.name, xp::format_sci(ref.drift),
                     xp::format_sci(median(drifts)),
                     xp::format_sci(min_of(drifts))});
  }
  table.print_rule();
  std::printf("\nA more positive drift means a smaller true residual "
              "||b - A x|| (more accurate result); the minimum column is "
              "the worst accuracy loss over all reconstructions.\n");
  return 0;
}
