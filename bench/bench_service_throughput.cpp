// Service-layer throughput: solves/sec through SolveService at 1–16
// concurrent clients, over mixed matrix sizes, cold (prepare included —
// every client pays assembly + factorization) vs warm (one prepared handle
// shared through the plan cache). Also measures the multi-RHS batched
// kernel against the same solves run independently, isolating the
// shared-SpMV-sweep win.
//
// Hand-rolled measurement loop (no google-benchmark dependency), but the
// output rows follow the library's console format —
//   BM_<name> <real> ms <cpu> ms <iterations> solves_per_sec=<rate>
// — so tools/run_benches.sh harvests them into BENCH_<stamp>.json
// unchanged.
#include <cstdio>
#include <ctime>
#include <future>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "service/solve_service.hpp"
#include "xp/experiment.hpp"

namespace {

using namespace esrp;

constexpr int kClientCounts[] = {1, 2, 4, 8, 16};
constexpr int kRepetitions = 3;
constexpr int kSolvesPerClient = 4;

struct Problem {
  const char* label; ///< row-name fragment (no spaces)
  const char* key;   ///< matrix registry key
};

constexpr Problem kProblems[] = {
    {"poisson2d_24x24", "poisson2d:24,24"},
    {"poisson2d_64x64", "poisson2d:64,64"},
    {"poisson3d_12x12x12", "poisson3d:12,12,12"},
};

double cpu_ms_now() {
  return 1000.0 * static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

void report(const std::string& name, double real_ms_total,
            double cpu_ms_total, int iterations, double solves_per_sec) {
  std::printf("%-64s %12.3f ms %12.3f ms %10d solves_per_sec=%.2f\n",
              name.c_str(), real_ms_total / iterations,
              cpu_ms_total / iterations, iterations, solves_per_sec);
}

SolveSpec make_spec(const Problem& problem) {
  SolveSpec spec;
  spec.matrix = problem.key;
  spec.solver = "pcg";
  spec.precond = "jacobi";
  return spec;
}

/// One timed round: `clients` sessions, kSolvesPerClient solves each,
/// against `handle` on `service`. Returns the elapsed seconds.
double timed_round(SolveService& service,
                   std::shared_ptr<const ProblemHandle> handle, int clients) {
  WallTimer timer;
  std::vector<std::future<SolveReport>> futures;
  futures.reserve(static_cast<std::size_t>(clients) * kSolvesPerClient);
  for (int c = 0; c < clients; ++c)
    for (int s = 0; s < kSolvesPerClient; ++s)
      futures.push_back(service.submit(handle, RunSpec{}));
  for (std::future<SolveReport>& f : futures)
    if (!f.get().converged) std::fprintf(stderr, "warning: non-convergence\n");
  return timer.seconds();
}

void bench_throughput(const Problem& problem, int clients, bool warm) {
  const SolveSpec spec = make_spec(problem);
  double real_s = 0;
  const double cpu0 = cpu_ms_now();

  if (warm) {
    ServiceOptions opts;
    opts.max_sessions = clients;
    SolveService service(opts);
    const PrepareResult prep = service.prepare(spec); // outside the clock
    for (int rep = 0; rep < kRepetitions; ++rep)
      real_s += timed_round(service, prep.handle, clients);
  } else {
    for (int rep = 0; rep < kRepetitions; ++rep) {
      // Cold: a fresh service per repetition, the prepare on the clock.
      ServiceOptions opts;
      opts.max_sessions = clients;
      SolveService service(opts);
      WallTimer timer;
      const PrepareResult prep = service.prepare(spec);
      std::vector<std::future<SolveReport>> futures;
      for (int c = 0; c < clients; ++c)
        for (int s = 0; s < kSolvesPerClient; ++s)
          futures.push_back(service.submit(prep.handle, RunSpec{}));
      for (std::future<SolveReport>& f : futures) (void)f.get();
      real_s += timer.seconds();
    }
  }

  const double cpu_ms = cpu_ms_now() - cpu0;
  const int total_solves = kRepetitions * clients * kSolvesPerClient;
  report("BM_ServiceThroughput/" + std::string(problem.label) + "/clients:" +
             std::to_string(clients) + (warm ? "/warm" : "/cold"),
         1000.0 * real_s, cpu_ms, kRepetitions,
         static_cast<double>(total_solves) / real_s);
}

void bench_batched(const Problem& problem, std::size_t k) {
  SolveService service;
  const SolveSpec spec = make_spec(problem);
  const PrepareResult prep = service.prepare(spec);
  const CsrMatrix& a = prep.handle->matrix();

  std::vector<Vector> batch;
  const Vector base = xp::make_rhs(a);
  for (std::size_t j = 0; j < k; ++j) {
    Vector b = base;
    for (std::size_t i = 0; i < b.size(); ++i)
      b[i] += static_cast<real_t>(j) * static_cast<real_t>(i % 3);
    batch.push_back(std::move(b));
  }

  const std::string stem = "BM_ServiceBatched/" + std::string(problem.label) +
                           "/k:" + std::to_string(k);
  {
    double real_s = 0;
    const double cpu0 = cpu_ms_now();
    for (int rep = 0; rep < kRepetitions; ++rep) {
      RunSpec run;
      run.rhs_batch = batch;
      WallTimer timer;
      const std::vector<SolveReport> reports =
          service.solve_batched(*prep.handle, run);
      real_s += timer.seconds();
      if (reports.size() != k) std::fprintf(stderr, "warning: short batch\n");
    }
    const double cpu_ms = cpu_ms_now() - cpu0;
    report(stem + "/shared_sweeps", 1000.0 * real_s, cpu_ms, kRepetitions,
           static_cast<double>(kRepetitions * k) / real_s);
  }
  {
    double real_s = 0;
    const double cpu0 = cpu_ms_now();
    for (int rep = 0; rep < kRepetitions; ++rep) {
      WallTimer timer;
      for (const Vector& b : batch) {
        RunSpec run;
        run.rhs = b;
        (void)service.solve(*prep.handle, run);
      }
      real_s += timer.seconds();
    }
    const double cpu_ms = cpu_ms_now() - cpu0;
    report(stem + "/independent", 1000.0 * real_s, cpu_ms, kRepetitions,
           static_cast<double>(kRepetitions * k) / real_s);
  }
}

} // namespace

int main() {
  for (const Problem& problem : kProblems) {
    for (const int clients : kClientCounts) {
      bench_throughput(problem, clients, /*warm=*/false);
      bench_throughput(problem, clients, /*warm=*/true);
    }
    bench_batched(problem, 8);
  }
  return 0;
}
