// Shared harness for the Table 2/3 and Figure 2/3 benches: runs the paper's
// full experiment grid for one test matrix and renders either the table
// layout (per-location rows) or the figure layout (per-T overhead series).
//
// All runs go through xp::ResultCache, so the table bench and the figure
// bench of the same matrix compute the grid only once per cache file.
#pragma once

#include <string>
#include <vector>

#include "sparse/generators.hpp"
#include "xp/experiment.hpp"
#include "xp/result_cache.hpp"

namespace esrp::bench {

struct GridSpec {
  rank_t num_nodes = 128;
  std::vector<index_t> esrp_intervals{1, 20, 50, 100}; ///< T=1 is ESR
  std::vector<index_t> imcr_intervals{20, 50, 100};
  std::vector<int> phis{1, 3, 8};
  // Failure locations: contiguous blocks starting at these ranks
  // (paper: 0 = "Start", N/2 = "Center").
  std::vector<rank_t> locations{0, 64};
};

/// One grid cell's measurements, all as fractions of t0.
struct CellResult {
  Strategy strategy = Strategy::none;
  index_t interval = 0;
  int phi = 0;
  double failure_free_overhead = 0;
  // Indexed like GridSpec::locations:
  std::vector<double> failure_overhead;
  std::vector<double> reconstruction_overhead;
};

struct GridResult {
  xp::Reference reference;
  std::vector<CellResult> cells;

  const CellResult& cell(Strategy s, index_t interval, int phi) const;
};

/// Run (or fetch from cache) the full grid for one problem.
GridResult run_grid(const TestProblem& prob, const GridSpec& spec,
                    xp::ResultCache& cache);

/// Render in the layout of the paper's Tables 2 and 3.
void print_table(const TestProblem& prob, const GridSpec& spec,
                 const GridResult& grid);

/// Render in the layout of the paper's Figures 2 and 3: two panels
/// (failure-free / with failures), T clusters on the x axis, one series per
/// strategy with markers phi = 1, 3, 8. Failure panels aggregate locations
/// by their median, like the figure caption describes.
void print_figure(const TestProblem& prob, const GridSpec& spec,
                  const GridResult& grid);

} // namespace esrp::bench
