// Ablation: choosing the checkpointing interval T with the Young/Daly
// estimates the paper cites ([8], [28]). Measures the per-stage storage
// cost and per-iteration time of ESRP and IMCR on the Emilia stand-in,
// derives the optimal T for the paper's MTBF scenarios (9 h for 100k
// nodes, 53 min for 1M nodes [11]), and cross-checks the first-order
// expected-runtime model across the paper's T grid.
#include <cstdio>

#include "core/interval.hpp"
#include "sparse/generators.hpp"
#include "xp/experiment.hpp"
#include "xp/table.hpp"

int main() {
  using namespace esrp;
  const TestProblem prob = emilia_like(16, 16, 16);
  const CsrMatrix& a = prob.matrix;
  const Vector b = xp::make_rhs(a);
  const rank_t nodes = 32;
  const xp::Reference ref = xp::run_reference(a, b, nodes);
  const double iter_s = ref.t0_modeled / static_cast<double>(ref.iterations);

  // Measure the per-stage cost delta from failure-free runs at T = 20.
  auto stage_cost = [&](Strategy strat) {
    xp::RunConfig cfg;
    cfg.strategy = strat;
    cfg.interval = 20;
    cfg.phi = 3;
    cfg.num_nodes = nodes;
    const xp::RunOutcome out = xp::run_experiment(a, b, cfg);
    const double stages =
        static_cast<double>(ref.iterations) / 20.0; // one stage per interval
    return (out.modeled_time - ref.t0_modeled) / stages;
  };
  const double delta_esrp = stage_cost(Strategy::esrp);
  const double delta_imcr = stage_cost(Strategy::imcr);

  std::printf("Optimal-interval study on %s (%d nodes, phi = 3)\n",
              prob.name.c_str(), static_cast<int>(nodes));
  std::printf("  per-iteration time:   %.3e s (modeled)\n", iter_s);
  std::printf("  ESRP storage stage:   delta = %.3e s\n", delta_esrp);
  std::printf("  IMCR checkpoint:      delta = %.3e s\n\n", delta_imcr);

  xp::TablePrinter table({"MTBF scenario", "strategy", "tau_Young [s]",
                          "tau_Daly [s]", "T_opt [iters]"},
                         {26, 9, 14, 14, 14});
  table.print_header();
  struct Scenario {
    const char* label;
    double mtbf_s;
  };
  for (const Scenario sc : {Scenario{"9 h (100k nodes, [11])", 9 * 3600.0},
                            Scenario{"53 min (1M nodes, [11])", 53 * 60.0},
                            Scenario{"60 s (stress case)", 60.0}}) {
    for (const auto& [label, delta] :
         {std::pair<const char*, double>{"ESRP", delta_esrp},
          std::pair<const char*, double>{"IMCR", delta_imcr}}) {
      IntervalModel m;
      m.checkpoint_cost_s = std::max(delta, 1e-9);
      m.mtbf_s = sc.mtbf_s;
      m.iteration_s = iter_s;
      table.print_row({label == std::string("ESRP") ? sc.label : "", label,
                       xp::format_sci(young_interval_seconds(
                           m.checkpoint_cost_s, m.mtbf_s)),
                       xp::format_sci(daly_interval_seconds(
                           m.checkpoint_cost_s, m.mtbf_s)),
                       std::to_string(optimal_interval_iterations(m))});
    }
  }
  table.print_rule();

  std::printf("\nexpected-runtime model across the paper's T grid "
              "(ESRP, MTBF = 60 s stress case, recovery cost 0.5 s):\n");
  for (const index_t t : {1, 20, 50, 100, 1000}) {
    const double tau = static_cast<double>(t) * iter_s;
    const double exp_rt = expected_runtime_seconds(
        ref.t0_modeled, tau, delta_esrp, 60.0, 0.5);
    std::printf("  T = %5lld: expected runtime %.3f s\n",
                static_cast<long long>(t), exp_rt);
  }
  std::printf("\nWith cheap storage stages and realistic MTBFs the optimal "
              "interval is far larger than the solve itself — the paper's "
              "observation that a single failure per run is already the "
              "interesting regime.\n");
  return 0;
}
