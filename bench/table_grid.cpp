#include "table_grid.hpp"

#include <cstdio>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "xp/table.hpp"

namespace esrp::bench {

namespace {

xp::RunConfig base_config(const GridSpec& spec, Strategy strategy,
                          index_t interval, int phi) {
  xp::RunConfig cfg;
  cfg.strategy = strategy;
  cfg.interval = interval;
  cfg.phi = phi;
  cfg.num_nodes = spec.num_nodes;
  return cfg;
}

} // namespace

const CellResult& GridResult::cell(Strategy s, index_t interval,
                                   int phi) const {
  for (const CellResult& c : cells) {
    if (c.strategy == s && c.interval == interval && c.phi == phi) return c;
  }
  throw Error("grid cell not found");
}

GridResult run_grid(const TestProblem& prob, const GridSpec& spec,
                    xp::ResultCache& cache) {
  const CsrMatrix& a = prob.matrix;
  const Vector b = xp::make_rhs(a);

  GridResult grid;
  // Reference run (cache it like any other config).
  {
    xp::RunConfig cfg = base_config(spec, Strategy::none, 1, 1);
    const xp::RunOutcome out = cache.get_or_run(a, b, prob.name, cfg);
    ESRP_CHECK_MSG(out.converged, "reference run did not converge");
    grid.reference.t0_modeled = out.modeled_time;
    grid.reference.iterations = out.iterations;
    grid.reference.drift = out.drift;
  }
  const double t0 = grid.reference.t0_modeled;
  const index_t c_ref = grid.reference.iterations;

  auto run_strategy = [&](Strategy strategy, index_t interval) {
    for (const int phi : spec.phis) {
      CellResult cell;
      cell.strategy = strategy;
      cell.interval = interval;
      cell.phi = phi;

      // Failure-free overhead.
      {
        xp::RunConfig cfg = base_config(spec, strategy, interval, phi);
        const xp::RunOutcome out = cache.get_or_run(a, b, prob.name, cfg);
        ESRP_CHECK(out.converged);
        cell.failure_free_overhead =
            xp::relative_overhead(out.modeled_time, t0);
      }
      // Failures: psi = phi contiguous ranks at each location, placed two
      // iterations before the end of the interval containing C/2.
      for (const rank_t loc : spec.locations) {
        xp::RunConfig cfg = base_config(spec, strategy, interval, phi);
        cfg.with_failure = true;
        cfg.psi = phi;
        cfg.failure_start = loc;
        cfg.failure_iteration =
            xp::worst_case_failure_iteration(c_ref, interval);
        const xp::RunOutcome out = cache.get_or_run(a, b, prob.name, cfg);
        ESRP_CHECK(out.converged);
        cell.failure_overhead.push_back(
            xp::relative_overhead(out.modeled_time, t0));
        cell.reconstruction_overhead.push_back(out.recovery_time / t0);
      }
      grid.cells.push_back(std::move(cell));
    }
  };

  for (const index_t interval : spec.esrp_intervals)
    run_strategy(Strategy::esrp, interval);
  for (const index_t interval : spec.imcr_intervals)
    run_strategy(Strategy::imcr, interval);
  return grid;
}

void print_table(const TestProblem& prob, const GridSpec& spec,
                 const GridResult& grid) {
  std::printf("Results for matrix %s (%s).\n", prob.name.c_str(),
              prob.problem_type.c_str());
  std::printf("Reference time t0 = %.3f s (modeled). The reference case "
              "takes C = %lld iterations to reach convergence.\n",
              grid.reference.t0_modeled,
              static_cast<long long>(grid.reference.iterations));
  std::printf("All overheads are relative to t0; failures are psi = phi "
              "contiguous ranks, two iterations before the end of the "
              "interval containing C/2.\n\n");

  std::vector<std::string> headers{"Strategy", "T", "Location"};
  std::vector<int> widths{8, 4, 8};
  for (const char* group : {"ff ", "fail ", "rec "}) {
    for (const int phi : spec.phis) {
      headers.push_back(std::string(group) + "phi=" + std::to_string(phi));
      widths.push_back(9);
    }
  }
  xp::TablePrinter table(headers, widths);
  table.print_header();

  auto strategy_label = [](Strategy s, index_t interval) {
    if (s == Strategy::esrp) return interval == 1 ? "ESR" : "ESRP";
    return "IMCR";
  };

  auto emit_rows = [&](Strategy s, index_t interval) {
    for (std::size_t l = 0; l < spec.locations.size(); ++l) {
      std::vector<std::string> row;
      row.push_back(l == 0 ? strategy_label(s, interval) : "");
      row.push_back(l == 0 ? std::to_string(interval) : "");
      row.push_back(spec.locations[l] == 0 ? "Start" : "Center");
      for (const int phi : spec.phis) {
        const CellResult& c = grid.cell(s, interval, phi);
        row.push_back(l == 0 ? xp::format_percent(c.failure_free_overhead)
                             : "");
      }
      for (const int phi : spec.phis) {
        const CellResult& c = grid.cell(s, interval, phi);
        row.push_back(xp::format_percent(c.failure_overhead[l]));
      }
      for (const int phi : spec.phis) {
        const CellResult& c = grid.cell(s, interval, phi);
        row.push_back(xp::format_percent(c.reconstruction_overhead[l]));
      }
      table.print_row(row);
    }
  };

  for (const index_t interval : spec.esrp_intervals)
    emit_rows(Strategy::esrp, interval);
  table.print_rule();
  for (const index_t interval : spec.imcr_intervals)
    emit_rows(Strategy::imcr, interval);
  table.print_rule();
  std::printf("\nColumns: ff = failure-free overhead, fail = overhead with "
              "psi = phi node failures, rec = reconstruction overhead "
              "(gather + inner solves for ESR/ESRP, checkpoint transfer for "
              "IMCR).\n\n");
}

void print_figure(const TestProblem& prob, const GridSpec& spec,
                  const GridResult& grid) {
  std::printf("Median runtime overhead series for matrix %s "
              "(markers: phi = 1, 3, 8).\n\n", prob.name.c_str());

  const std::vector<index_t> clusters = spec.imcr_intervals; // {20, 50, 100}

  auto series_value = [&](Strategy s, index_t interval, int phi,
                          bool with_failures) {
    const CellResult& c = grid.cell(s, interval, phi);
    if (!with_failures) return c.failure_free_overhead;
    // Median over locations, matching the figure caption.
    return median(c.failure_overhead);
  };

  for (const bool with_failures : {false, true}) {
    std::printf("(%c) %s\n", with_failures ? 'b' : 'a',
                with_failures ? "Node failures introduced"
                              : "Failure-free solver");
    std::printf("  %-8s", "series");
    for (const index_t t : clusters) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "T=%lld", static_cast<long long>(t));
      std::printf(" | %-26s", buf);
    }
    std::printf("\n");
    struct SeriesDef {
      const char* label;
      Strategy strategy;
      bool is_esr; // ESR = ESRP with T=1, constant across clusters
    };
    for (const SeriesDef def : {SeriesDef{"ESRP", Strategy::esrp, false},
                                SeriesDef{"ESR", Strategy::esrp, true},
                                SeriesDef{"IMCR", Strategy::imcr, false}}) {
      std::printf("  %-8s", def.label);
      for (const index_t t : clusters) {
        std::printf(" |");
        for (const int phi : spec.phis) {
          const index_t interval = def.is_esr ? 1 : t;
          std::printf(" %7.2f%%",
                      100 * series_value(def.strategy, interval, phi,
                                         with_failures));
        }
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
}

} // namespace esrp::bench
