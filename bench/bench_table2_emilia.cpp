// Reproduces Table 2 of the paper: ESRP vs IMCR overheads for the
// Emilia_923 stand-in on 128 simulated nodes — failure-free overhead,
// overhead with psi = phi node failures (locations Start/Center), and
// reconstruction overhead, for T in {1, 20, 50, 100} x phi in {1, 3, 8}.
#include "table_grid.hpp"

int main() {
  using namespace esrp;
  bench::GridSpec spec;
  xp::ResultCache cache;
  const TestProblem prob = emilia_like_default();
  const bench::GridResult grid = bench::run_grid(prob, spec, cache);
  bench::print_table(prob, spec, grid);
  return 0;
}
