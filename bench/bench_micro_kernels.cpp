// Google-benchmark micro benches of the kernels that determine the
// simulator's wall-clock cost: sequential SpMV, the distributed SpMV and
// ASpMV exchanges, the block Jacobi apply, a full resilient PCG iteration,
// checkpoint storage, one Alg. 2 state reconstruction, the thread scaling
// of the parallel SpMV / BLAS-1 kernels (1/2/4/8 threads, operands
// first-touched under the kernels' own partition), the SELL-C-σ SpMV vs.
// CSR (with a SUMMARY assertion that SELL never loses), the fused
// iteration kernels vs. their separate-kernel baselines (with a SUMMARY
// assertion that fusion is not slower at large n), and the esrp::solve
// facade's end-to-end dispatch overhead vs. the direct call.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <memory>

#include "api/registry.hpp"
#include "api/solve.hpp"
#include "comm/exchange.hpp"
#include "common/fused.hpp"
#include "common/timer.hpp"
#include "resilience/checkpoint_store.hpp"
#include "core/reconstruction.hpp"
#include "parallel/parallel.hpp"
#include "precond/block_jacobi.hpp"
#include "precond/jacobi.hpp"
#include "solver/pcg.hpp"
#include "sparse/generators.hpp"
#include "sparse/sell.hpp"
#include "xp/experiment.hpp"

namespace {

using namespace esrp;

const CsrMatrix& test_matrix() {
  static const CsrMatrix a = emilia_like(16, 16, 16).matrix; // 4096 rows
  return a;
}

/// Large instance for the thread-scaling benches: 262,144 rows and ~1.8M
/// nnz, so even 8-way row chunks stream enough memory to amortize dispatch.
const CsrMatrix& scaling_matrix() {
  static const CsrMatrix a = poisson3d(64, 64, 64);
  return a;
}

/// SELL-C-σ mirror of scaling_matrix(), built once (the registry's
/// `format=sell` path amortizes conversion the same way via ProblemHandle).
const SellMatrix& sell_scaling_matrix() {
  static const SellMatrix s(scaling_matrix(), kDefaultSellSigma);
  return s;
}

/// First-touch operand for the scaling benches: default-initialized storage
/// (no serial zero-fill from the Vector constructor) whose pages are first
/// written under the *same* parallel_for partition the elementwise kernels
/// use. On a NUMA machine that places each thread's slice on its own node;
/// construct it after set_num_threads so the partition matches the run.
struct FirstTouch {
  FirstTouch(std::size_t n, real_t value)
      : data(new real_t[n]), size(n) {
    const auto in = static_cast<index_t>(n);
    parallel_for(index_t{0}, in, elementwise_grain(in),
                 [&](index_t lo, index_t hi) {
                   for (index_t i = lo; i < hi; ++i)
                     data[static_cast<std::size_t>(i)] = value;
                 });
  }
  /// First-touch placement, then parallel copy of `src` into it.
  FirstTouch(std::span<const real_t> src) : FirstTouch(src.size(), 0) {
    vec_copy(src, span());
  }
  std::span<real_t> span() { return {data.get(), size}; }
  std::span<const real_t> span() const { return {data.get(), size}; }
  std::unique_ptr<real_t[]> data;
  std::size_t size;
};

void BM_SequentialSpmv(benchmark::State& state) {
  const CsrMatrix& a = test_matrix();
  const Vector x = xp::make_rhs(a);
  Vector y(x.size());
  for (auto _ : state) {
    a.spmv(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_SequentialSpmv);

void BM_DistributedSpmv(benchmark::State& state) {
  const CsrMatrix& a = test_matrix();
  const auto nodes = static_cast<rank_t>(state.range(0));
  const BlockRowPartition part(a.rows(), nodes);
  SimCluster cluster(part);
  const SpmvPlan plan(a, part);
  ExchangeEngine engine(a, plan, cluster);
  DistVector x(part, xp::make_rhs(a)), y(part);
  for (auto _ : state) {
    engine.spmv(x, y);
    benchmark::DoNotOptimize(&y);
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_DistributedSpmv)->Arg(16)->Arg(64)->Arg(128);

void BM_DistributedAspmv(benchmark::State& state) {
  const CsrMatrix& a = test_matrix();
  const BlockRowPartition part(a.rows(), 64);
  SimCluster cluster(part);
  const SpmvPlan plan(a, part);
  const AspmvPlan aug(plan, static_cast<int>(state.range(0)));
  ExchangeEngine engine(a, plan, cluster);
  DistVector x(part, xp::make_rhs(a)), y(part);
  index_t tag = 0;
  for (auto _ : state) {
    RedundantCopy copy = engine.aspmv(aug, x, tag++, y);
    benchmark::DoNotOptimize(copy.total_entries());
  }
}
BENCHMARK(BM_DistributedAspmv)->Arg(1)->Arg(3)->Arg(8);

void BM_BlockJacobiApply(benchmark::State& state) {
  const CsrMatrix& a = test_matrix();
  const BlockJacobiPreconditioner precond(
      a, static_cast<index_t>(state.range(0)));
  const Vector r = xp::make_rhs(a);
  Vector z(r.size());
  for (auto _ : state) {
    precond.apply(r, z);
    benchmark::DoNotOptimize(z.data());
  }
}
BENCHMARK(BM_BlockJacobiApply)->Arg(1)->Arg(10)->Arg(64);

void BM_CheckpointStore(benchmark::State& state) {
  const CsrMatrix& a = test_matrix();
  const BlockRowPartition part(a.rows(), 64);
  SimCluster cluster(part);
  CheckpointStore store(part, static_cast<int>(state.range(0)), 4, 1);
  DistVector x(part, xp::make_rhs(a));
  real_t beta = 0.5;
  const SolverState st{{&x, &x, &x, &x}, {}, {&beta}};
  index_t tag = 0;
  for (auto _ : state) {
    store.store(tag++, st, cluster);
  }
}
BENCHMARK(BM_CheckpointStore)->Arg(1)->Arg(3)->Arg(8);

void BM_Reconstruction(benchmark::State& state) {
  const CsrMatrix& a = test_matrix();
  const auto psi = static_cast<rank_t>(state.range(0));
  const rank_t nodes = 64;
  const BlockRowPartition part(a.rows(), nodes);
  const BlockJacobiPreconditioner precond(a, part, 10);
  const Vector b = xp::make_rhs(a);

  // Consistent synthetic state (see tests/core/reconstruction_test.cpp).
  Vector x(b.size(), 0.25), r(b.size()), z(b.size()), p_prev(b.size(), 0.5);
  a.spmv(x, r);
  for (std::size_t i = 0; i < r.size(); ++i) r[i] = b[i] - r[i];
  precond.apply(r, z);
  Vector p_cur(b.size());
  for (std::size_t i = 0; i < z.size(); ++i)
    p_cur[i] = z[i] + 0.37 * p_prev[i];

  const std::vector<rank_t> failed = contiguous_ranks(8, psi, nodes);
  RedundantCopy prev(9, nodes), cur(10, nodes);
  for (index_t i = 0; i < a.rows(); ++i) {
    const rank_t holder = (part.owner(i) + psi + 1) % nodes;
    prev.record(holder, i, p_prev[static_cast<std::size_t>(i)]);
    cur.record(holder, i, p_cur[static_cast<std::size_t>(i)]);
  }
  prev.finalize();
  cur.finalize();
  DistVector x_star(part, x), r_star(part, r);

  for (auto _ : state) {
    SimCluster cluster(part);
    ReconstructionInputs in;
    in.a = &a;
    in.p_action = precond.action_matrix();
    in.part = &part;
    in.failed = failed;
    in.p_prev = &prev;
    in.p_cur = &cur;
    in.beta_prev = 0.37;
    in.x_star = &x_star;
    in.r_star = &r_star;
    in.b_global = b;
    const ReconstructionOutput out = reconstruct_state(in, cluster);
    benchmark::DoNotOptimize(out.x_f.data());
  }
}
BENCHMARK(BM_Reconstruction)->Arg(1)->Arg(3)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_FullResilientIteration(benchmark::State& state) {
  // Amortized wall cost per ESRP iteration (T = 20, phi = 3, no failure).
  const CsrMatrix& a = test_matrix();
  const Vector b = xp::make_rhs(a);
  for (auto _ : state) {
    xp::RunConfig cfg;
    cfg.strategy = Strategy::esrp;
    cfg.interval = 20;
    cfg.phi = 3;
    cfg.num_nodes = 64;
    const xp::RunOutcome out = xp::run_experiment(a, b, cfg);
    state.SetIterationTime(out.wall_seconds /
                           static_cast<double>(out.executed));
    benchmark::DoNotOptimize(out.modeled_time);
  }
  state.SetLabel("wall seconds per PCG iteration on 64 simulated nodes");
}
BENCHMARK(BM_FullResilientIteration)->UseManualTime()->Iterations(3)
    ->Unit(benchmark::kMillisecond);

// --- Facade dispatch overhead (api_redesign acceptance: the declarative
// SolveSpec -> esrp::solve path must cost < 1% over calling the solver
// directly — the spec is data, validation is O(fields), and the registries
// dispatch once per solve, so anything above noise would be a regression).

/// Matrix/rhs shared by the facade benches: large enough that a solve takes
/// milliseconds (dwarfing timer noise), small enough to iterate quickly.
const CsrMatrix& facade_matrix() {
  static const CsrMatrix a = poisson2d(64, 64);
  return a;
}

Vector run_direct_pcg(const CsrMatrix& a, const Vector& b) {
  const JacobiPreconditioner precond(a);
  Vector x(b.size(), 0);
  pcg_solve(a, b, x, &precond);
  return x;
}

SolveReport run_facade_pcg(const CsrMatrix& a, const Vector& b) {
  SolveSpec spec;
  spec.matrix_data = &a;
  spec.rhs = b;
  spec.solver = "pcg";
  spec.precond = "jacobi";
  return esrp::solve(spec);
}

void BM_DirectEndToEndSolve(benchmark::State& state) {
  const CsrMatrix& a = facade_matrix();
  const Vector b = xp::make_rhs(a);
  for (auto _ : state) {
    const Vector x = run_direct_pcg(a, b);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_DirectEndToEndSolve)->Unit(benchmark::kMillisecond);

void BM_FacadeEndToEndSolve(benchmark::State& state) {
  const CsrMatrix& a = facade_matrix();
  const Vector b = xp::make_rhs(a);
  for (auto _ : state) {
    const SolveReport report = run_facade_pcg(a, b);
    benchmark::DoNotOptimize(report.x.data());
  }
}
BENCHMARK(BM_FacadeEndToEndSolve)->Unit(benchmark::kMillisecond);

void BM_FacadeOverheadAssert(benchmark::State& state) {
  // One-sided bound, stable on noisy shared runners: the facade's additive
  // per-solve work (spec validation + the three registry lookups — the
  // dispatch layer; the solve itself and the vectors are shared/moved) is
  // measured in a tight loop where microseconds resolve cleanly, then
  // compared against the *fastest observed* direct solve. Differencing two
  // full solve timings would put the quantity under test far below the
  // noise floor. run_benches.sh greps the log for the "ERROR OCCURRED"
  // marker SkipWithError leaves, so a regression fails the bench job.
  const CsrMatrix& a = facade_matrix();
  const Vector b = xp::make_rhs(a);
  SolveSpec spec;
  spec.matrix_data = &a;
  spec.rhs = b;
  spec.solver = "pcg";
  spec.precond = "jacobi";
  (void)run_direct_pcg(a, b); // warm caches

  double best_direct = 1e300;
  double per_dispatch = 0;
  for (auto _ : state) {
    for (int rep = 0; rep < 5; ++rep) {
      WallTimer direct_timer;
      const Vector x = run_direct_pcg(a, b);
      benchmark::DoNotOptimize(x.data());
      best_direct = std::min(best_direct, direct_timer.seconds());
    }
    constexpr int kDispatchReps = 1000;
    WallTimer dispatch_timer;
    for (int rep = 0; rep < kDispatchReps; ++rep) {
      validate_spec(spec);
      benchmark::DoNotOptimize(&solver_registry().get(spec.solver));
      benchmark::DoNotOptimize(&precond_registry().get(spec.precond));
    }
    per_dispatch = dispatch_timer.seconds() / kDispatchReps;
  }
  const double overhead = per_dispatch / best_direct;
  char label[96];
  std::snprintf(label, sizeof label,
                "dispatch %.2f us = %.4f%% of a %.2f ms solve",
                1e6 * per_dispatch, 100 * overhead, 1e3 * best_direct);
  state.SetLabel(label);
  if (overhead > 0.01)
    state.SkipWithError(label);
}
BENCHMARK(BM_FacadeOverheadAssert)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// --- Thread scaling (tentpole acceptance: spmv >= 2x at 4 threads on a
// >= 1M-nnz generator matrix, on hardware with >= 4 cores). Each variant
// pins the global thread count for its run and restores serial at the end,
// so the argument doubles as the reported x-axis.

// --- Kernel fusion (perf_opt acceptance: the fused multi-dot and the
// fused spmv+dot must not lose to their separate-kernel baselines at large
// n — they touch the same bytes in fewer sweeps). The paired benches report
// both sides for the perf trajectory; BM_FusedKernelAssert turns the
// comparison into a SUMMARY failure via the same SkipWithError channel as
// BM_FacadeOverheadAssert.

/// 4M-element operands: each dot streams 64 MB, far beyond LLC, so the
/// sweep count — not arithmetic — sets the runtime.
constexpr std::size_t kFusedDotLen = std::size_t{1} << 22;

const Vector& fused_bench_vector(int which) {
  static const Vector v[3] = {Vector(kFusedDotLen, 0.5),
                              Vector(kFusedDotLen, -0.25),
                              Vector(kFusedDotLen, 1.25)};
  return v[which];
}

void BM_Dot3Separate(benchmark::State& state) {
  set_num_threads(static_cast<int>(state.range(0)));
  const Vector& r = fused_bench_vector(0);
  const Vector& u = fused_bench_vector(1);
  const Vector& w = fused_bench_vector(2);
  real_t sink = 0;
  for (auto _ : state) {
    sink += vec_dot(r, u) + vec_dot(w, u) + vec_dot(r, r);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(3 * kFusedDotLen));
  set_num_threads(1);
}
BENCHMARK(BM_Dot3Separate)->Arg(1)->Arg(4)->UseRealTime();

void BM_Dot3Fused(benchmark::State& state) {
  set_num_threads(static_cast<int>(state.range(0)));
  const Vector& r = fused_bench_vector(0);
  const Vector& u = fused_bench_vector(1);
  const Vector& w = fused_bench_vector(2);
  real_t sink = 0;
  for (auto _ : state) {
    const auto [gamma, delta, rr] = vec_dot3(r, u, w, u, r, r);
    sink += gamma + delta + rr;
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(3 * kFusedDotLen));
  set_num_threads(1);
}
BENCHMARK(BM_Dot3Fused)->Arg(1)->Arg(4)->UseRealTime();

void BM_SpmvThenDot(benchmark::State& state) {
  const CsrMatrix& a = scaling_matrix();
  set_num_threads(static_cast<int>(state.range(0)));
  const Vector p = xp::make_rhs(a);
  Vector y(p.size());
  real_t sink = 0;
  for (auto _ : state) {
    a.spmv(p, y);
    sink += vec_dot(p, y);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
  set_num_threads(1);
}
BENCHMARK(BM_SpmvThenDot)->Arg(1)->Arg(4)->UseRealTime();

void BM_SpmvDotFused(benchmark::State& state) {
  const CsrMatrix& a = scaling_matrix();
  set_num_threads(static_cast<int>(state.range(0)));
  const Vector p = xp::make_rhs(a);
  Vector y(p.size());
  real_t sink = 0;
  for (auto _ : state) {
    sink += a.spmv_dot(p, y);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
  set_num_threads(1);
}
BENCHMARK(BM_SpmvDotFused)->Arg(1)->Arg(4)->UseRealTime();

void BM_FusedKernelAssert(benchmark::State& state) {
  // Best-of-5 wall time for each side, compared with a noise margin: on a
  // quiet machine the fused multi-dot approaches a 3x sweep reduction, so
  // "not slower than 1.15x the separate sequence" fails only on a real
  // regression (e.g. a chunking change that serializes the fused path).
  const CsrMatrix& a = scaling_matrix();
  const Vector& r = fused_bench_vector(0);
  const Vector& u = fused_bench_vector(1);
  const Vector& w = fused_bench_vector(2);
  const Vector p = xp::make_rhs(a);
  Vector y(p.size());

  auto best_of = [](int reps, auto&& fn) {
    double best = 1e300;
    for (int i = 0; i < reps; ++i) {
      WallTimer t;
      fn();
      best = std::min(best, t.seconds());
    }
    return best;
  };

  real_t sink = 0;
  double dot_sep = 0, dot_fused = 0, spmv_sep = 0, spmv_fused = 0;
  for (auto _ : state) {
    dot_sep = best_of(5, [&] {
      sink += vec_dot(r, u) + vec_dot(w, u) + vec_dot(r, r);
    });
    dot_fused = best_of(5, [&] {
      const auto [g, d, n2] = vec_dot3(r, u, w, u, r, r);
      sink += g + d + n2;
    });
    spmv_sep = best_of(5, [&] {
      a.spmv(p, y);
      sink += vec_dot(p, y);
    });
    spmv_fused = best_of(5, [&] { sink += a.spmv_dot(p, y); });
    benchmark::DoNotOptimize(sink);
  }

  char label[128];
  std::snprintf(label, sizeof label,
                "dot3 fused/sep %.2f, spmv_dot fused/sep %.2f",
                dot_fused / dot_sep, spmv_fused / spmv_sep);
  state.SetLabel(label);
  if (dot_fused > 1.15 * dot_sep || spmv_fused > 1.15 * spmv_sep)
    state.SkipWithError(label);
}
BENCHMARK(BM_FusedKernelAssert)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_SpmvThreadScaling(benchmark::State& state) {
  const CsrMatrix& a = scaling_matrix();
  set_num_threads(static_cast<int>(state.range(0)));
  const Vector rhs = xp::make_rhs(a);
  const FirstTouch x(rhs);
  FirstTouch y(rhs.size(), 0);
  for (auto _ : state) {
    a.spmv(x.span(), y.span());
    benchmark::DoNotOptimize(y.data.get());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
  state.SetBytesProcessed(
      state.iterations() *
      static_cast<int64_t>(a.nnz() * (sizeof(real_t) + sizeof(index_t))));
  set_num_threads(1);
}
BENCHMARK(BM_SpmvThreadScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// --- SELL-C-σ (perf_opt acceptance: at large n the chunked, lane-parallel
// SELL kernels must beat row-serial CSR on the same matrix while staying
// bitwise identical — the parity side is pinned by tests/sparse/sell_test;
// these benches plus BM_SellSpeedupAssert pin the speed side).

void BM_SpmvSellThreadScaling(benchmark::State& state) {
  const CsrMatrix& a = scaling_matrix();
  const SellMatrix& s = sell_scaling_matrix();
  set_num_threads(static_cast<int>(state.range(0)));
  const Vector rhs = xp::make_rhs(a);
  const FirstTouch x(rhs);
  FirstTouch y(rhs.size(), 0);
  for (auto _ : state) {
    s.spmv(x.span(), y.span());
    benchmark::DoNotOptimize(y.data.get());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
  // The actual matrix stream: padded values plus the run-compressed column
  // stream (one 32-bit base per position in packed chunks).
  state.SetBytesProcessed(
      state.iterations() *
      static_cast<int64_t>(s.padded_entries() * sizeof(real_t) +
                           s.col_stream_entries() * sizeof(std::int32_t)));
  set_num_threads(1);
}
BENCHMARK(BM_SpmvSellThreadScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_SpmvDotSellFused(benchmark::State& state) {
  const SellMatrix& s = sell_scaling_matrix();
  set_num_threads(static_cast<int>(state.range(0)));
  const Vector rhs = xp::make_rhs(scaling_matrix());
  const FirstTouch p(rhs);
  FirstTouch y(rhs.size(), 0);
  real_t sink = 0;
  for (auto _ : state) {
    sink += s.spmv_dot(p.span(), y.span());
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * s.nnz());
  set_num_threads(1);
}
BENCHMARK(BM_SpmvDotSellFused)->Arg(1)->Arg(4)->UseRealTime();

void BM_SellSpeedupAssert(benchmark::State& state) {
  // Best-of-5 single-thread wall time, SELL vs CSR spmv on the 1.8M-nnz
  // stencil. The gate is deliberately below the typical measured win so it
  // only fires on a real regression (SELL falling behind CSR), not on
  // machine-to-machine bandwidth differences; the actual ratio lands in the
  // label and the BENCH_*.json trajectory.
  const CsrMatrix& a = scaling_matrix();
  const SellMatrix& s = sell_scaling_matrix();
  const Vector p = xp::make_rhs(a);
  Vector y(p.size());

  auto best_of = [](int reps, auto&& fn) {
    double best = 1e300;
    for (int i = 0; i < reps; ++i) {
      WallTimer t;
      fn();
      best = std::min(best, t.seconds());
    }
    return best;
  };

  double csr = 0, sell = 0;
  for (auto _ : state) {
    csr = best_of(5, [&] { a.spmv(p, y); });
    sell = best_of(5, [&] { s.spmv(p, y); });
    benchmark::DoNotOptimize(y.data());
  }
  char label[96];
  std::snprintf(label, sizeof label, "sell speedup %.2fx over csr spmv",
                csr / sell);
  state.SetLabel(label);
  if (sell > csr)
    state.SkipWithError(label);
}
BENCHMARK(BM_SellSpeedupAssert)->Iterations(1)->Unit(benchmark::kMillisecond);

/// DRAM-sized BLAS-1 operands: the old 262,144-element vectors (4 MB) fit
/// in many LLCs, so the 1-thread numbers flattered cache bandwidth and the
/// scaling curve under-reported the memory wall. 2^22 doubles = 32 MB per
/// operand streams from DRAM, and at kReduceGrain = 2^14 a dot still cuts
/// into 256 chunks — plenty to feed 8 threads.
constexpr std::size_t kBlas1Len = std::size_t{1} << 22;

void BM_DotThreadScaling(benchmark::State& state) {
  set_num_threads(static_cast<int>(state.range(0)));
  const FirstTouch x(kBlas1Len, 0.25);
  const FirstTouch y(kBlas1Len, 0.5);
  real_t sink = 0;
  for (auto _ : state) {
    sink += vec_dot(x.span(), y.span());
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kBlas1Len));
  set_num_threads(1);
}
BENCHMARK(BM_DotThreadScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

void BM_AxpyThreadScaling(benchmark::State& state) {
  set_num_threads(static_cast<int>(state.range(0)));
  const FirstTouch x(kBlas1Len, 0.25);
  FirstTouch y(kBlas1Len, 0.5);
  for (auto _ : state) {
    vec_axpy(y.span(), 1e-9, x.span());
    benchmark::DoNotOptimize(y.data.get());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kBlas1Len));
  set_num_threads(1);
}
BENCHMARK(BM_AxpyThreadScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

} // namespace
