// Ablation: why does ESRP need a *three*-slot redundancy queue (paper §3,
// Fig. 1)? With two slots, the first ASpMV push of a new storage stage
// evicts the previous stage's pair; a failure in that window finds no
// adjacent copies and the solver falls back to a scratch restart. This
// bench sweeps the failure iteration across one full stage cycle and
// reports the recovery outcome and cost for both capacities.
#include <cstdio>

#include "core/resilient_pcg.hpp"
#include "precond/block_jacobi.hpp"
#include "sparse/generators.hpp"
#include "xp/experiment.hpp"
#include "xp/table.hpp"

int main() {
  using namespace esrp;

  const TestProblem prob = emilia_like(12, 12, 12);
  const CsrMatrix& a = prob.matrix;
  const Vector b = xp::make_rhs(a);
  const rank_t nodes = 24;
  const index_t interval = 20;
  const xp::Reference ref = xp::run_reference(a, b, nodes);
  std::printf("Queue-capacity ablation on %s (%lld rows, C = %lld, "
              "T = %lld)\n\n",
              prob.name.c_str(), static_cast<long long>(a.rows()),
              static_cast<long long>(ref.iterations),
              static_cast<long long>(interval));

  // One full stage cycle around the stage at j = 6T (well inside the solve):
  // failures at the first-storage iteration, mid-stage, second-storage
  // iteration, and a plain iteration after the stage.
  const index_t stage = 6 * interval;
  const std::vector<std::pair<const char*, index_t>> scenarios{
      {"at first storage push (j = 6T)", stage},
      {"between the two pushes is impossible (consecutive iters)", stage},
      {"at second storage push (j = 6T+1)", stage + 1},
      {"plain iteration after stage (j = 6T+5)", stage + 5},
      {"just before next stage (j = 7T-1)", 7 * interval - 1},
  };

  xp::TablePrinter table({"failure point", "slots", "outcome", "rolled back",
                          "overhead"},
                         {48, 6, 12, 12, 10});
  table.print_header();

  for (const auto& [label, fail_at] : scenarios) {
    for (const std::size_t capacity : {std::size_t{3}, std::size_t{2}}) {
      xp::RunConfig cfg;
      cfg.strategy = Strategy::esrp;
      cfg.interval = interval;
      cfg.phi = 2;
      cfg.num_nodes = nodes;
      cfg.queue_capacity = capacity;
      cfg.with_failure = true;
      cfg.psi = 2;
      cfg.failure_start = 10;
      cfg.failure_iteration = fail_at;
      const xp::RunOutcome out = xp::run_experiment(a, b, cfg);
      table.print_row(
          {capacity == 3 ? label : "", std::to_string(capacity),
           out.restarted ? "RESTART" : "recovered",
           std::to_string(out.wasted),
           xp::format_percent(
               xp::relative_overhead(out.modeled_time, ref.t0_modeled))});
    }
  }
  table.print_rule();
  std::printf("\nWith 2 slots the failure at the first storage push of a "
              "stage loses the previous pair and forces a scratch restart — "
              "the three-slot queue (paper Fig. 1) always recovers.\n");
  return 0;
}
