// Ablation: ASpMV augmentation traffic as a function of phi and of the
// sparsity pattern (paper §2.2: "denser matrices will have lower overheads
// for ASpMV" and banded structure keeps the neighbor sends cheap). This is
// a pure communication-plan study: no solves, just the per-iteration extra
// entries relative to the regular SpMV traffic.
#include <cstdio>

#include "comm/aspmv_plan.hpp"
#include "sparse/generators.hpp"
#include "xp/table.hpp"

int main() {
  using namespace esrp;
  const rank_t nodes = 64;

  struct Pattern {
    std::string name;
    CsrMatrix matrix;
  };
  std::vector<Pattern> patterns;
  patterns.push_back({"tridiagonal", laplace1d(16384)});
  patterns.push_back({"poisson2d_128", poisson2d(128, 128)});
  patterns.push_back({"poisson3d_25", poisson3d(25, 25, 25)});
  patterns.push_back({"emilia_like_24", emilia_like(24, 24, 24).matrix});
  patterns.push_back({"audikw_like_16", audikw_like(16, 16, 16).matrix});
  patterns.push_back({"banded_bw64", banded_spd(16384, 64, 0.2, 7)});

  std::printf("ASpMV augmentation traffic per iteration on %d nodes "
              "(entries sent, as %% of the regular SpMV halo traffic)\n\n",
              static_cast<int>(nodes));

  xp::TablePrinter table({"pattern", "rows", "nnz/row", "halo/iter",
                          "phi=1", "phi=3", "phi=8"},
                         {16, 8, 8, 10, 9, 9, 9});
  table.print_header();

  for (const Pattern& p : patterns) {
    const BlockRowPartition part(p.matrix.rows(), nodes);
    const SpmvPlan base(p.matrix, part);
    const double halo = static_cast<double>(base.total_entries_sent());
    std::vector<std::string> row{
        p.name, std::to_string(p.matrix.rows()),
        xp::format_fixed(static_cast<double>(p.matrix.nnz()) /
                             static_cast<double>(p.matrix.rows()),
                         1),
        std::to_string(base.total_entries_sent())};
    for (const int phi : {1, 3, 8}) {
      const AspmvPlan aug(base, phi);
      const double extra = static_cast<double>(aug.total_extra_entries());
      row.push_back(halo > 0 ? xp::format_percent(extra / halo) : "inf");
    }
    table.print_row(row);
  }
  table.print_rule();
  std::printf("\nDenser/banded patterns ship most entries anyway, so the "
              "augmentation is relatively cheap; a tridiagonal pattern has "
              "a tiny halo and pays the most, as §2.2 of the paper "
              "predicts.\n\n");

  // Placement-policy comparison: the paper's ring destinations (Eq. 1) vs
  // the halo-affine policy that piggybacks on existing SpMV routes — the
  // "ongoing work" direction of §2.2.1. New routes cost a fresh message
  // latency each iteration.
  std::printf("Designated-destination placement: fresh communication routes "
              "opened by the augmentation (phi = 3)\n\n");
  xp::TablePrinter placement({"pattern", "ring routes", "halo-affine routes",
                              "saved"},
                             {16, 12, 18, 8});
  placement.print_header();
  for (const Pattern& p : patterns) {
    const BlockRowPartition part(p.matrix.rows(), nodes);
    const SpmvPlan base(p.matrix, part);
    const AspmvPlan ring(base, 3, AspmvPlacement::ring);
    const AspmvPlan affine(base, 3, AspmvPlacement::halo_affine);
    const std::size_t saved = ring.new_routes() - affine.new_routes();
    placement.print_row({p.name, std::to_string(ring.new_routes()),
                         std::to_string(affine.new_routes()),
                         std::to_string(saved)});
  }
  placement.print_rule();
  std::printf("\nThe halo-affine policy reuses senders' existing heavy "
              "routes, trading ring locality for message-count savings.\n");
  return 0;
}
