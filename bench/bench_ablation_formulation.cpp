// Ablation: preconditioner formulation in the Alg. 2 reconstruction
// (paper reference [20]). The inverse formulation solves
// P_{I_f,I_f} r_f = v with an inner CG; the matrix formulation computes
// r_f = M_{I_f,I} z directly. Both then solve the A_{I_f,I_f} system for x.
// Compares recovery cost for both formulations across phi.
#include <cstdio>

#include "core/resilient_pcg.hpp"
#include "precond/block_jacobi.hpp"
#include "sparse/generators.hpp"
#include "xp/experiment.hpp"
#include "xp/table.hpp"

namespace {

using namespace esrp;

struct Outcome {
  double recovery = 0;
  index_t inner_precond = 0;
  index_t inner_matrix = 0;
};

Outcome run_one(const CsrMatrix& a, const Vector& b,
                const BlockRowPartition& part, int phi, index_t fail_at,
                PrecondFormulation form) {
  SimCluster cluster(part, xp::calibrated_cost(a, part.num_nodes()));
  BlockJacobiPreconditioner precond(a, part, 10);
  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 20;
  opts.phi = phi;
  opts.precond_formulation = form;
  opts.failure.iteration = fail_at;
  opts.failure.ranks = contiguous_ranks(part.num_nodes() / 2,
                                        static_cast<rank_t>(phi),
                                        part.num_nodes());
  ResilientPcg solver(a, precond, cluster, opts);
  const ResilientSolveResult res = solver.solve(b);
  Outcome out;
  for (const RecoveryRecord& rec : res.recoveries) {
    out.recovery += rec.modeled_time;
    out.inner_precond += rec.inner_iterations_precond;
    out.inner_matrix += rec.inner_iterations_matrix;
  }
  return out;
}

} // namespace

int main() {
  using namespace esrp;
  const TestProblem prob = emilia_like(16, 16, 16);
  const CsrMatrix& a = prob.matrix;
  const Vector b = xp::make_rhs(a);
  const rank_t nodes = 32;
  const BlockRowPartition part(a.rows(), nodes);
  const xp::Reference ref = xp::run_reference(a, b, nodes);

  std::printf("Reconstruction-formulation ablation on %s "
              "(%lld rows, %d nodes, ESRP T = 20, C = %lld)\n\n",
              prob.name.c_str(), static_cast<long long>(a.rows()),
              static_cast<int>(nodes),
              static_cast<long long>(ref.iterations));

  xp::TablePrinter table({"phi", "formulation", "recovery [s]",
                          "rec overhead", "inner P", "inner A"},
                         {4, 12, 12, 12, 8, 8});
  table.print_header();
  const index_t fail_at = xp::worst_case_failure_iteration(ref.iterations, 20);
  for (const int phi : {1, 3, 8}) {
    for (const PrecondFormulation form :
         {PrecondFormulation::inverse, PrecondFormulation::matrix}) {
      const Outcome out = run_one(a, b, part, phi, fail_at, form);
      table.print_row(
          {std::to_string(phi),
           form == PrecondFormulation::inverse ? "inverse" : "matrix",
           xp::format_fixed(out.recovery, 4),
           xp::format_percent(out.recovery / ref.t0_modeled),
           std::to_string(out.inner_precond),
           std::to_string(out.inner_matrix)});
    }
  }
  table.print_rule();
  std::printf("\nThe matrix formulation removes the P_{If,If} inner solve "
              "entirely (inner P = 0); with node-aligned block Jacobi both "
              "recover the identical state.\n");
  return 0;
}
