// Reproduces Figure 2 of the paper: median runtime-overhead series for the
// Emilia_923 stand-in — panel (a) failure-free, panel (b) with failures —
// clustered by checkpointing interval T, one line per strategy (ESRP, ESR,
// IMCR), markers phi = 1, 3, 8. Shares its runs with bench_table2_emilia
// through the result cache.
#include "table_grid.hpp"

int main() {
  using namespace esrp;
  bench::GridSpec spec;
  xp::ResultCache cache;
  const TestProblem prob = emilia_like_default();
  const bench::GridResult grid = bench::run_grid(prob, spec, cache);
  bench::print_figure(prob, spec, grid);
  return 0;
}
