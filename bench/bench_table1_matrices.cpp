// Reproduces Table 1 of the paper: the test-matrix inventory. Prints the
// synthetic stand-ins used by every other bench, side by side with the
// SuiteSparse originals they model.
#include <cstdio>

#include "sparse/generators.hpp"
#include "xp/table.hpp"

int main() {
  using namespace esrp;

  std::printf("Table 1: test matrices (synthetic stand-ins; see DESIGN.md "
              "3.5 for the substitution rationale)\n\n");

  xp::TablePrinter table({"Matrix", "Problem type", "Problem size", "#NZ",
                          "nnz/row", "half-bw"},
                         {24, 50, 12, 10, 8, 8});
  table.print_header();
  for (const TestProblem& prob :
       {emilia_like_default(), audikw_like_default()}) {
    const CsrMatrix& a = prob.matrix;
    table.print_row({prob.name, prob.problem_type,
                     std::to_string(a.rows()), std::to_string(a.nnz()),
                     xp::format_fixed(static_cast<double>(a.nnz()) /
                                          static_cast<double>(a.rows()),
                                      1),
                     std::to_string(a.half_bandwidth())});
  }
  table.print_rule();

  std::printf("\npaper originals (SuiteSparse):\n");
  xp::TablePrinter orig({"Matrix", "Problem type", "Problem size", "#NZ"},
                        {24, 50, 12, 12});
  orig.print_header();
  orig.print_row({"Emilia_923", "Structural", "923136", "40373538"});
  orig.print_row({"audikw_1", "Structural", "943695", "77651847"});
  orig.print_rule();
  return 0;
}
