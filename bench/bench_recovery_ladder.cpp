// Recovery-ladder performance: wall-clock latency of each recovery rung
// (directed scenarios forcing reconstruct, checkpoint restore, scratch
// restart, and shrink+rejoin), plus rung-frequency counts over seeded
// cascading-failure sweeps — dense stochastic processes whose events
// routinely collide with recovery windows.
//
// Hand-rolled measurement loop (no google-benchmark dependency), but the
// output rows follow the library's console format —
//   BM_<name> <real> ms <cpu> ms <iterations> key=val ...
// — so tools/run_benches.sh harvests them into BENCH_<stamp>.json
// unchanged.
#include <cstdio>
#include <ctime>
#include <map>
#include <string>
#include <vector>

#include "api/solve.hpp"
#include "common/timer.hpp"
#include "scenario/failure_process.hpp"

namespace {

using namespace esrp;

constexpr rank_t kNodes = 8;
constexpr int kRepetitions = 5;

double cpu_ms_now() {
  return 1000.0 * static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

SolveSpec base_spec() {
  SolveSpec spec;
  spec.matrix = "poisson2d:24,24";
  spec.solver = "resilient-pcg";
  spec.precond = "block-jacobi";
  spec.nodes = kNodes;
  spec.phi = 2;
  spec.interval = 20;
  return spec;
}

/// Per-rung latency: the wall-clock cost of a solve that recovers through
/// one specific rung, against the failure-free run of the same spec. The
/// `recovery_overhead_ms` key is the difference — the paper's recovery-cost
/// metric, but measured, not modeled (modeled_recovery_s is the SimCluster
/// figure for cross-checking against Table 2).
void bench_rung_latency(const std::string& label, SolveSpec spec,
                        double baseline_ms) {
  double real_s = 0;
  double modeled_recovery = 0;
  std::string rungs;
  const double cpu0 = cpu_ms_now();
  for (int rep = 0; rep < kRepetitions; ++rep) {
    WallTimer timer;
    const SolveReport res = solve(spec);
    real_s += timer.seconds();
    if (!res.converged) std::fprintf(stderr, "warning: non-convergence\n");
    if (rep == 0) {
      for (const RecoveryRecord& rec : res.recoveries) {
        modeled_recovery += rec.modeled_time;
        if (!rungs.empty()) rungs += '+';
        rungs += to_string(rec.rung);
      }
    }
  }
  const double cpu_ms = cpu_ms_now() - cpu0;
  const double real_ms = 1000.0 * real_s / kRepetitions;
  std::printf("%-64s %12.3f ms %12.3f ms %10d "
              "recovery_overhead_ms=%.3f modeled_recovery_s=%.6f rungs=%s\n",
              ("BM_RecoveryLadder/rung:" + label).c_str(), real_ms,
              cpu_ms / kRepetitions, kRepetitions, real_ms - baseline_ms,
              modeled_recovery, rungs.empty() ? "none" : rungs.c_str());
}

/// Rung frequencies over a seeded cascading sweep: `seeds` runs against the
/// given stochastic failure process, counting which ladder rung resolved
/// each event. Dense processes (mean well below the solve length) make
/// back-to-back events and failures inside recovery windows routine.
void bench_rung_frequency(const std::string& label,
                          const std::string& process, Strategy strategy,
                          const std::string& policy, int seeds,
                          index_t horizon) {
  std::map<std::string, int> counts;
  int events = 0;
  double real_s = 0;
  const double cpu0 = cpu_ms_now();
  for (int seed = 0; seed < seeds; ++seed) {
    SolveSpec spec = base_spec();
    spec.strategy = strategy;
    spec.recovery_policy = policy;
    spec.failures = sample_failure_schedule(
        process, kNodes, horizon, static_cast<std::uint64_t>(seed) + 1);
    WallTimer timer;
    const SolveReport res = solve(spec);
    real_s += timer.seconds();
    if (!res.converged) std::fprintf(stderr, "warning: non-convergence\n");
    events += static_cast<int>(res.recoveries.size());
    for (const RecoveryRecord& rec : res.recoveries)
      ++counts[to_string(rec.rung)];
  }
  const double cpu_ms = cpu_ms_now() - cpu0;
  std::string freq;
  for (const auto& [rung, n] : counts) {
    if (!freq.empty()) freq += ' ';
    freq += rung + "=" + std::to_string(n);
  }
  std::printf("%-64s %12.3f ms %12.3f ms %10d events=%d %s\n",
              ("BM_RungFrequency/" + label).c_str(), 1000.0 * real_s / seeds,
              cpu_ms / seeds, seeds, events,
              freq.empty() ? "none=0" : freq.c_str());
}

} // namespace

int main() {
  // Shared failure-free baseline for the latency rows.
  double baseline_ms = 0;
  {
    SolveSpec spec = base_spec();
    spec.strategy = Strategy::none;
    double real_s = 0;
    const double cpu0 = cpu_ms_now();
    for (int rep = 0; rep < kRepetitions; ++rep) {
      WallTimer timer;
      (void)solve(spec);
      real_s += timer.seconds();
    }
    const double cpu_ms = cpu_ms_now() - cpu0;
    baseline_ms = 1000.0 * real_s / kRepetitions;
    std::printf("%-64s %12.3f ms %12.3f ms %10d rungs=none\n",
                "BM_RecoveryLadder/rung:baseline", baseline_ms,
                cpu_ms / kRepetitions, kRepetitions);
  }

  // One directed scenario per rung. older-snapshot needs a decayed queue
  // (snapshot slots beyond the newest pair) and is only reachable through
  // the engine API, so the solve-facade rows cover the other four.
  {
    SolveSpec spec = base_spec(); // ESRP stage at 20/21, failure after it
    spec.strategy = Strategy::esrp;
    spec.failures.push_back(FailureEvent{25, {1}});
    bench_rung_latency("reconstruct", spec, baseline_ms);
  }
  {
    SolveSpec spec = base_spec(); // IMCR checkpoint at 20, failure after it
    spec.strategy = Strategy::imcr;
    spec.failures.push_back(FailureEvent{25, {1}});
    bench_rung_latency("checkpoint", spec, baseline_ms);
  }
  {
    SolveSpec spec = base_spec(); // before the first stage: nothing stored
    spec.strategy = Strategy::esrp;
    spec.failures.push_back(FailureEvent{5, {1}});
    bench_rung_latency("scratch", spec, baseline_ms);
  }
  {
    SolveSpec spec = base_spec(); // same event, shrink policy: absorb+rejoin
    spec.strategy = Strategy::esrp;
    spec.recovery_policy = "shrink";
    spec.failures.push_back(FailureEvent{5, {1}});
    bench_rung_latency("shrink_rejoin", spec, baseline_ms);
  }

  // Cascading sweeps: rung frequency under dense failure processes.
  bench_rung_frequency("esrp_exponential_mean8", "exponential:mean=8",
                       Strategy::esrp, "ladder", 10, 200);
  bench_rung_frequency("esrp_rack2_mean12", "rack:2/exponential:mean=12",
                       Strategy::esrp, "ladder", 10, 200);
  bench_rung_frequency("imcr_exponential_mean8", "exponential:mean=8",
                       Strategy::imcr, "ladder", 10, 200);
  bench_rung_frequency("esrp_shrink_exponential_mean8", "exponential:mean=8",
                       Strategy::esrp, "shrink", 10, 200);
  return 0;
}
